package transport

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeSSH writes an executable standing in for the ssh client: it bumps a
// counter file ($n holds the attempt number) and runs the given script.
// A script that should model the plan push must drain stdin itself
// (`cat > /dev/null`); worker-spawn scripts must NOT read stdin — the
// coordinator holds it open as the cancellation channel.
func fakeSSH(t *testing.T, script string) (bin, counter string) {
	t.Helper()
	dir := t.TempDir()
	counter = filepath.Join(dir, "attempts")
	bin = filepath.Join(dir, "fakessh")
	body := fmt.Sprintf("#!/bin/sh\nn=$(cat %q 2>/dev/null || echo 0)\nn=$((n+1))\necho $n > %q\n%s\n", counter, counter, script)
	if err := os.WriteFile(bin, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	return bin, counter
}

func attemptCount(t *testing.T, counter string) int {
	t.Helper()
	b, err := os.ReadFile(counter)
	if err != nil {
		t.Fatalf("reading attempt counter: %v", err)
	}
	var n int
	fmt.Sscanf(strings.TrimSpace(string(b)), "%d", &n)
	return n
}

// TestSSHSeedPlanRetriesConnect: a connection that fails twice and then
// succeeds seeds the plan on the third attempt instead of failing the
// slot, and the retries are logged.
func TestSSHSeedPlanRetriesConnect(t *testing.T) {
	bin, counter := fakeSSH(t, `cat > /dev/null; if [ "$n" -le 2 ]; then exit 255; fi; exit 0`)
	var log bytes.Buffer
	s := &SSH{
		Hosts:          []string{"h0"},
		Command:        []string{bin},
		ConnectBackoff: time.Millisecond,
		Log:            &log,
	}
	spec := Spec{Dir: t.TempDir(), PlanFile: []byte(`{"plan":true}`)}
	if err := s.seedPlan(context.Background(), 0, spec); err != nil {
		t.Fatalf("seedPlan should succeed on attempt 3: %v", err)
	}
	if got := attemptCount(t, counter); got != 3 {
		t.Fatalf("connect attempted %d time(s), want 3", got)
	}
	if !strings.Contains(log.String(), "retrying in") {
		t.Fatalf("retries not logged: %q", log.String())
	}
	// The slot is now marked seeded: another seedPlan is a no-op.
	if err := s.seedPlan(context.Background(), 0, spec); err != nil {
		t.Fatal(err)
	}
	if got := attemptCount(t, counter); got != 3 {
		t.Fatalf("re-seed hit the wire (%d attempts), want cached", got)
	}
}

// TestSSHSeedPlanConnectFailedError: a connection that never comes up
// exhausts its capped attempts and reports a "connect failed" error —
// distinct from a worker dying mid-lease.
func TestSSHSeedPlanConnectFailedError(t *testing.T) {
	bin, counter := fakeSSH(t, "cat > /dev/null; exit 255")
	s := &SSH{
		Hosts:           []string{"h0"},
		Command:         []string{bin},
		ConnectAttempts: 2,
		ConnectBackoff:  time.Millisecond,
	}
	err := s.seedPlan(context.Background(), 0, Spec{Dir: t.TempDir(), PlanFile: []byte("{}")})
	if err == nil {
		t.Fatal("dead connection seeded a plan")
	}
	if !strings.Contains(err.Error(), "connect failed") {
		t.Fatalf("error does not say connect failed: %v", err)
	}
	if IsFatalSpawn(err) {
		t.Fatalf("connect failure must stay transient (backoff path), got fatal: %v", err)
	}
	if got := attemptCount(t, counter); got != 2 {
		t.Fatalf("connect attempted %d time(s), want 2 (capped)", got)
	}
}

// TestSSHWaitClassifiesExit: ssh's own exit 255 reads as a connection
// failure; any other status is the remote worker's own death.
func TestSSHWaitClassifiesExit(t *testing.T) {
	for _, tc := range []struct {
		script, want string
	}{
		{"exit 255", "connect failed"},
		{"exit 3", "worker died"},
	} {
		bin, _ := fakeSSH(t, tc.script)
		s := &SSH{Hosts: []string{"h0"}, Command: []string{bin}}
		w, err := s.Spawn(context.Background(), 0, Spec{Dir: "/tmp/job"})
		if err != nil {
			t.Fatal(err)
		}
		for range w.Events() {
		}
		werr := w.Wait()
		if werr == nil || !strings.Contains(werr.Error(), tc.want) {
			t.Fatalf("script %q: Wait() = %v, want substring %q", tc.script, werr, tc.want)
		}
	}
}

// TestSSHSpawnSlotRangeFatal: a slot outside Hosts is a configuration
// error retries cannot fix.
func TestSSHSpawnSlotRangeFatal(t *testing.T) {
	s := &SSH{Hosts: []string{"h0"}}
	_, err := s.Spawn(context.Background(), 5, Spec{})
	if err == nil || !IsFatalSpawn(err) {
		t.Fatalf("out-of-range slot must fail fatally, got %v", err)
	}
}

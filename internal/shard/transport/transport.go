// Package transport abstracts how the work-stealing shard coordinator
// launches, monitors, and cancels workers for a leased batch of cells.
//
// A Transport owns a fixed number of slots (concurrent worker processes it
// can host); Spawn turns one lease — a Spec naming the job directory and
// the leased cell indices — into a running Worker. The coordinator never
// sees processes, only the Worker contract:
//
//   - Events streams heartbeat Events parsed from the worker's stdout.
//     Any heartbeat proves liveness; an EventCell additionally proves the
//     named cell's record is durably on disk on the worker's side.
//   - Wait blocks until the worker exits.
//   - Kill force-terminates the worker. It must work on a process that is
//     stopped (SIGSTOP) or wedged, because it is how stolen leases are
//     reclaimed.
//
// Two implementations ship: Local runs `<binary> shard run -cells ...
// -heartbeat` on this machine, SSH runs the same command on a remote host
// against a synced job directory. Both speak the line protocol below over
// the worker's stdin/stdout: stdout carries heartbeats, and the transport
// holds the worker's stdin open — the worker treats stdin EOF as a cancel
// signal, which is what reaches an SSH-launched process when the client
// dies (no signal delivery is needed across the connection).
//
// The wire protocol is deliberately trivial — one space-separated line per
// event, prefixed so it can share stdout with human output:
//
//	nbhb1 start <plan-hash>   worker accepted the lease under this plan
//	nbhb1 alive               periodic liveness (worker default: 1s)
//	nbhb1 cell <index>        cell <index>'s record is durable on disk
//	nbhb1 cell <index> <ms>   ... and took ~<ms> of wall clock to produce
//	nbhb1 cell <index> <ms> <sum> <b64>
//	                          ... and here is the record itself: <b64> is
//	                          the record line base64-encoded, <sum> the
//	                          first 12 hex chars of its SHA-256 (framed
//	                          record push — the mountless path)
//	nbhb1 done                every leased cell is complete
//
// The cell forms are a strict extension: the bare three-field line is what
// pre-push workers emit, the four-field form adds the per-cell wall-clock
// cost the coordinator's lease sizing feeds on, and the six-field form
// additionally carries the finished cell's one-line record so the
// coordinator can persist it on its own side without any shared or synced
// job directory. A torn or interleaved record frame cannot be
// half-understood: the field count, the base64 coding, and the embedded
// checksum must all agree or the line parses as no event at all (and the
// coordinator re-runs the cell rather than trusting it).
//
// Unparseable stdout lines are forwarded to the transport's log writer,
// never treated as protocol errors.
package transport

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// protoPrefix tags every heartbeat line; the version is part of the tag so
// a future protocol change cannot be half-understood.
const protoPrefix = "nbhb1"

// MaxFramePayload bounds the decoded size of one framed record payload.
// Larger frames are rejected at parse time (and would indicate a corrupt
// length field or an interleaving bug, not a legitimate record — a cell
// record is a single JSON line of curve moments, typically a few KB).
const MaxFramePayload = 8 << 20

// maxFrameLine bounds the scanner's line buffer: a full frame is the
// payload base64-encoded (4/3 inflation) plus the fixed fields.
const maxFrameLine = MaxFramePayload/3*4 + 4096

// EventKind enumerates the heartbeat protocol's line types.
type EventKind int

// The four heartbeat event kinds, in lifecycle order.
const (
	// EventStart is the worker's first line: it accepted the lease and is
	// executing under the plan hash carried in Event.Plan.
	EventStart EventKind = iota
	// EventAlive is a bare periodic liveness beat.
	EventAlive
	// EventCell reports that the record for cell Event.Cell is durably on
	// disk (written via atomic rename before the line is emitted).
	EventCell
	// EventDone reports that every leased cell has a record.
	EventDone
)

// String returns the kind's protocol verb.
func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventAlive:
		return "alive"
	case EventCell:
		return "cell"
	case EventDone:
		return "done"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one parsed heartbeat.
type Event struct {
	// Kind says which protocol line this is.
	Kind EventKind
	// Cell is the completed cell's global grid index (EventCell only).
	Cell int
	// Plan is the plan hash the worker runs under (EventStart only).
	Plan string
	// Cost is the worker-reported wall-clock cost of producing the cell's
	// record, rounded to whole milliseconds; 0 means the worker did not
	// report one (EventCell only). Coordinators feed it into lease sizing.
	Cost time.Duration
	// Payload is the cell's one-line record, pushed in-band so the
	// coordinator can persist it without a shared job directory; nil when
	// the worker relies on a synced filesystem instead (EventCell only).
	// The frame's checksum has already been verified — a payload is intact
	// as a byte string, though callers must still verify it as a record.
	Payload []byte
}

// Equal reports whether two events are identical, payload bytes included.
// (Event is not ==-comparable because of the payload slice.)
func (e Event) Equal(o Event) bool {
	if e.Kind != o.Kind || e.Cell != o.Cell || e.Plan != o.Plan || e.Cost != o.Cost {
		return false
	}
	return string(e.Payload) == string(o.Payload)
}

// Encode returns the event's wire line, without a trailing newline.
func (e Event) Encode() string {
	switch e.Kind {
	case EventStart:
		return protoPrefix + " start " + e.Plan
	case EventCell:
		s := protoPrefix + " cell " + strconv.Itoa(e.Cell)
		if e.Cost > 0 || len(e.Payload) > 0 {
			s += " " + strconv.FormatInt(costMillis(e.Cost), 10)
		}
		if len(e.Payload) > 0 {
			s += " " + payloadSum(e.Payload) + " " + base64.StdEncoding.EncodeToString(e.Payload)
		}
		return s
	case EventDone:
		return protoPrefix + " done"
	default:
		return protoPrefix + " alive"
	}
}

// costMillis renders a cost for the wire: whole milliseconds, with any
// non-zero cost rounded up to at least 1ms so "measured but fast" stays
// distinguishable from "not measured".
func costMillis(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	if ms := d.Milliseconds(); ms > 0 {
		return ms
	}
	return 1
}

// payloadSum returns the frame-level checksum of a record payload: the
// first 12 hex characters of its SHA-256. It guards the frame against torn
// and interleaved lines; end-to-end record integrity is separately covered
// by the checksum embedded in the record itself.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])[:12]
}

// ParseEvent decodes one stdout line. ok is false for anything that is not
// a well-formed heartbeat — callers forward such lines to their log. For
// record-carrying cell frames, ok additionally requires the base64 coding
// and the frame checksum to verify, so a torn, truncated, or interleaved
// frame never surfaces as a payload (at worst it degrades to a shorter
// valid form, which carries no payload and so can never persist anything).
func ParseEvent(line string) (ev Event, ok bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 || fields[0] != protoPrefix {
		return Event{}, false
	}
	switch fields[1] {
	case "start":
		if len(fields) != 3 {
			return Event{}, false
		}
		return Event{Kind: EventStart, Plan: fields[2]}, true
	case "alive":
		return Event{Kind: EventAlive}, true
	case "cell":
		if len(fields) != 3 && len(fields) != 4 && len(fields) != 6 {
			return Event{}, false
		}
		idx, err := strconv.Atoi(fields[2])
		if err != nil || idx < 0 {
			return Event{}, false
		}
		ev := Event{Kind: EventCell, Cell: idx}
		if len(fields) >= 4 {
			ms, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil || ms < 0 {
				return Event{}, false
			}
			ev.Cost = time.Duration(ms) * time.Millisecond
		}
		if len(fields) == 6 {
			if len(fields[4]) != 12 || base64.StdEncoding.DecodedLen(len(fields[5])) > MaxFramePayload+3 {
				return Event{}, false
			}
			payload, err := base64.StdEncoding.DecodeString(fields[5])
			if err != nil || len(payload) == 0 || len(payload) > MaxFramePayload {
				return Event{}, false
			}
			if payloadSum(payload) != fields[4] {
				return Event{}, false
			}
			ev.Payload = payload
		}
		return ev, true
	case "done":
		return Event{Kind: EventDone}, true
	default:
		return Event{}, false
	}
}

// Emitter writes heartbeat lines from the worker side. It serialises
// concurrent emitters (the periodic alive ticker and the per-cell callback
// run on different goroutines) so lines never interleave mid-record.
type Emitter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewEmitter returns an Emitter writing protocol lines to w (typically the
// worker's stdout, which the coordinator's transport is scanning).
func NewEmitter(w io.Writer) *Emitter { return &Emitter{w: w} }

// Start emits the lease-accepted line carrying the plan hash.
func (e *Emitter) Start(planHash string) { e.emit(Event{Kind: EventStart, Plan: planHash}) }

// Alive emits a bare liveness beat.
func (e *Emitter) Alive() { e.emit(Event{Kind: EventAlive}) }

// Cell emits the durable-record line for one finished cell, with no cost
// or payload — the pre-push form, kept for synced-directory deployments.
func (e *Emitter) Cell(index int) { e.emit(Event{Kind: EventCell, Cell: index}) }

// CellRecord emits the durable-record line for one finished cell carrying
// its wall-clock cost and, when payload is non-nil, the record itself as a
// checksummed frame (the mountless push path). The emitter's mutex
// guarantees the frame reaches stdout as one uninterleaved line.
func (e *Emitter) CellRecord(index int, cost time.Duration, payload []byte) {
	e.emit(Event{Kind: EventCell, Cell: index, Cost: cost, Payload: payload})
}

// Done emits the all-cells-complete line.
func (e *Emitter) Done() { e.emit(Event{Kind: EventDone}) }

func (e *Emitter) emit(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fmt.Fprintln(e.w, ev.Encode())
}

// Spec describes one lease to a transport: which cells of the job in Dir
// the spawned worker must execute.
type Spec struct {
	// Dir is the job directory as the coordinator sees it. Transports that
	// cross machines may map it (see SSH.Dir).
	Dir string
	// Cells are the leased global cell indices, ascending.
	Cells []int
	// Workers is the worker-pool size inside the spawned process
	// (0 = the worker's default, GOMAXPROCS).
	Workers int
	// Progress forwards -progress to the worker, whose per-replication
	// stream arrives on the transport's log writer (stderr).
	Progress bool
	// PushRecords forwards -push-records to the worker: each finished
	// cell's record travels back in-band as a checksummed frame on the
	// worker's stdout instead of relying on a shared or synced job
	// directory.
	PushRecords bool
	// PlanFile, when non-nil, is the content of the job's plan.json; a
	// transport whose workers do not share the coordinator's filesystem
	// materialises it in the worker-side job directory before launch, so a
	// mountless worker needs only the binary and a scratch dir. Transports
	// that share the directory with the coordinator may ignore it.
	PlanFile []byte
}

// Worker is a handle to one spawned worker.
type Worker interface {
	// Events returns the worker's heartbeat stream. The channel is closed
	// when the worker's stdout ends; the coordinator must drain it.
	Events() <-chan Event
	// Wait blocks until the worker has exited and returns its exit error.
	Wait() error
	// Kill force-terminates the worker (and closes its stdin). It is
	// idempotent and must reclaim even a stopped (SIGSTOP) process, which
	// is the straggler case work-stealing exists for.
	Kill()
}

// Transport launches workers for leases. Implementations must be safe for
// concurrent Spawn calls on distinct slots.
type Transport interface {
	// Slots returns how many workers the transport can run concurrently;
	// the coordinator runs one lease loop per slot.
	Slots() int
	// SlotName names a slot for logs and lease-state files (e.g.
	// "local#1", "ssh:host2").
	SlotName(slot int) string
	// Spawn launches a worker executing spec on the given slot. The
	// context bounds the worker's lifetime: cancelling it kills the
	// process, exactly like Worker.Kill.
	Spawn(ctx context.Context, slot int, spec Spec) (Worker, error)
}

// joinCells renders a lease's cell list as the -cells flag value.
func joinCells(cells []int) string {
	var b strings.Builder
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// WorkerArgs builds the `shard run` argv (after the binary) that executes
// one lease with heartbeats enabled — the command line both built-in
// transports launch, exported so alternative transports (a cluster
// scheduler, a test harness) can launch byte-identical workers.
func WorkerArgs(dir string, spec Spec) []string {
	args := []string{"shard", "run", "-dir", dir, "-cells", joinCells(spec.Cells), "-heartbeat"}
	if spec.PushRecords {
		args = append(args, "-push-records")
	}
	if spec.Workers > 0 {
		args = append(args, "-workers", strconv.Itoa(spec.Workers))
	}
	if spec.Progress {
		args = append(args, "-progress")
	}
	return args
}

// drainLines forwards non-protocol output to log, prefixed per worker, and
// parsed heartbeats to events. It returns when r is exhausted.
func drainLines(r io.Reader, events chan<- Event, log *lineWriter) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxFrameLine)
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := ParseEvent(line); ok {
			events <- ev
			continue
		}
		if log != nil && strings.TrimSpace(line) != "" {
			log.writeLine(line)
		}
	}
}

package transport

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
)

// SSH is the Transport that runs workers on remote hosts over plain ssh:
// `ssh <host> <binary> shard run -dir <dir> -cells ... -heartbeat`. One
// slot per Hosts entry; list a host twice to run two workers on it.
//
// The job directory must be synced between the coordinator and every host
// (shared filesystem, rsync loop, syncthing, ...): workers write their
// cell records on their own machine, and the merge reads them wherever the
// directory is assembled. Liveness and completion do not depend on the
// sync — they travel in-band as heartbeats on the ssh connection's stdout,
// and a worker whose connection dies observes stdin EOF and stops. A
// stolen cell may end up with records written by two hosts; that is
// harmless because records are deterministic — every worker produces
// byte-identical records for the same cell, so whichever copy syncs last
// changes nothing.
//
// Authentication is the operator's problem by design: the transport runs
// whatever Command says (default "ssh"), so agent forwarding, jump hosts,
// and per-host users all live in ssh config, not here.
type SSH struct {
	// Hosts are the ssh destinations (user@host works); one worker slot
	// per entry. Required.
	Hosts []string
	// Binary is the worker executable on the remote hosts; "" means
	// "nbandit" on the remote PATH.
	Binary string
	// Dir, when non-empty, overrides the job directory path on the remote
	// side (the coordinator's Spec.Dir is used otherwise).
	Dir string
	// Command is the ssh client invocation; nil means
	// {"ssh", "-o", "BatchMode=yes"} so a missing key fails fast instead
	// of prompting inside a worker slot.
	Command []string
	// Log receives every worker's stderr and non-protocol stdout, each
	// line prefixed with its host. May be nil.
	Log io.Writer

	logMu sync.Mutex
}

// Slots returns one slot per configured host entry.
func (s *SSH) Slots() int { return len(s.Hosts) }

// SlotName names a slot by its host.
func (s *SSH) SlotName(slot int) string {
	if slot < 0 || slot >= len(s.Hosts) {
		return fmt.Sprintf("ssh#%d", slot)
	}
	return "ssh:" + s.Hosts[slot]
}

// Spawn launches one worker on the slot's host.
func (s *SSH) Spawn(ctx context.Context, slot int, spec Spec) (Worker, error) {
	if slot < 0 || slot >= len(s.Hosts) {
		return nil, fmt.Errorf("transport: ssh slot %d out of range [0,%d)", slot, len(s.Hosts))
	}
	return startWorker(ctx, s.argv(slot, spec), s.logWriter(slot))
}

// argv builds the full local command line for one lease. The remote part
// is shell-quoted because ssh concatenates its arguments into one string
// for the remote shell.
func (s *SSH) argv(slot int, spec Spec) []string {
	client := s.Command
	if client == nil {
		client = []string{"ssh", "-o", "BatchMode=yes"}
	}
	bin := s.Binary
	if bin == "" {
		bin = "nbandit"
	}
	dir := spec.Dir
	if s.Dir != "" {
		dir = s.Dir
	}
	remote := append([]string{bin}, WorkerArgs(dir, spec)...)
	quoted := make([]string, len(remote))
	for i, a := range remote {
		quoted[i] = shellQuote(a)
	}
	argv := append(append([]string{}, client...), s.Hosts[slot])
	return append(argv, strings.Join(quoted, " "))
}

func (s *SSH) logWriter(slot int) *lineWriter {
	if s.Log == nil {
		return nil
	}
	return &lineWriter{mu: &s.logMu, w: s.Log, prefix: "[" + s.SlotName(slot) + "] "}
}

// shellQuote renders one argument safely for a POSIX remote shell.
func shellQuote(s string) string {
	if s != "" && !strings.ContainsAny(s, " \t\n\"'`$\\*?[]{}()<>|&;~#") {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}

package transport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
)

// SSH is the Transport that runs workers on remote hosts over plain ssh:
// `ssh <host> <binary> shard run -dir <dir> -cells ... -heartbeat`. One
// slot per Hosts entry; list a host twice to run two workers on it.
//
// With record push-sync (StealCoordinator.PushRecords → Spec.PushRecords)
// the hosts need only the binary and a scratch directory: the transport
// seeds each host's job dir with the pushed plan before its first worker
// starts, and every finished cell's record travels back in-band as a
// checksummed frame on the worker's stdout for the coordinator to persist
// on its own side. Without push-sync, the job directory must instead be
// synced between the coordinator and every host (shared filesystem, rsync
// loop, syncthing, ...): workers write their cell records on their own
// machine, and the merge reads them wherever the directory is assembled.
// Liveness and completion never depend on a sync — they travel in-band as
// heartbeats on the ssh connection's stdout, and a worker whose connection
// dies observes stdin EOF and stops. A stolen cell may end up executed by
// two hosts; that is harmless because records are deterministic — every
// worker produces byte-identical records for the same cell, so whichever
// copy lands (or syncs) last changes nothing.
//
// Authentication is the operator's problem by design: the transport runs
// whatever Command says (default "ssh"), so agent forwarding, jump hosts,
// and per-host users all live in ssh config, not here.
type SSH struct {
	// Hosts are the ssh destinations (user@host works); one worker slot
	// per entry. Required.
	Hosts []string
	// Binary is the worker executable on the remote hosts; "" means
	// "nbandit" on the remote PATH.
	Binary string
	// Dir, when non-empty, overrides the job directory path on the remote
	// side (the coordinator's Spec.Dir is used otherwise).
	Dir string
	// Command is the ssh client invocation; nil means
	// {"ssh", "-o", "BatchMode=yes"} so a missing key fails fast instead
	// of prompting inside a worker slot.
	Command []string
	// Log receives every worker's stderr and non-protocol stdout, each
	// line prefixed with its host. May be nil.
	Log io.Writer

	logMu sync.Mutex

	seedMu sync.Mutex
	seeded map[int]bool // slots whose remote dir already holds the plan
}

// Slots returns one slot per configured host entry.
func (s *SSH) Slots() int { return len(s.Hosts) }

// SlotName names a slot by its host.
func (s *SSH) SlotName(slot int) string {
	if slot < 0 || slot >= len(s.Hosts) {
		return fmt.Sprintf("ssh#%d", slot)
	}
	return "ssh:" + s.Hosts[slot]
}

// Spawn launches one worker on the slot's host, pushing the plan into the
// host's job directory first when the lease carries one (once per slot —
// re-leases reuse the seeded directory).
func (s *SSH) Spawn(ctx context.Context, slot int, spec Spec) (Worker, error) {
	if slot < 0 || slot >= len(s.Hosts) {
		return nil, fmt.Errorf("transport: ssh slot %d out of range [0,%d)", slot, len(s.Hosts))
	}
	if spec.PlanFile != nil {
		if err := s.seedPlan(ctx, slot, spec); err != nil {
			return nil, err
		}
	}
	return startWorker(ctx, s.argv(slot, spec), s.logWriter(slot))
}

// seedPlan materialises the job directory on the slot's host: one ssh
// round trip that mkdirs the cells directory and lands plan.json via
// cat-to-temp plus mv, the remote spelling of the atomic tmp+rename every
// record write uses. The plan travels on the ssh client's stdin, so no
// scp/sftp subsystem is required on the host. The temp name carries the
// slot index because a host listed twice shares one remote dir: two slots
// seeding concurrently must not write through the same temp file (one
// slot's mv would yank the inode out from under the other's cat, tearing
// plan.json or failing the second mv).
func (s *SSH) seedPlan(ctx context.Context, slot int, spec Spec) error {
	s.seedMu.Lock()
	already := s.seeded[slot]
	s.seedMu.Unlock()
	if already {
		return nil
	}
	dir := shellQuote(s.dir(spec))
	tmp := fmt.Sprintf("%s/plan.json.push.%d", dir, slot)
	script := fmt.Sprintf("mkdir -p %s/cells && cat > %s && mv %s %s/plan.json",
		dir, tmp, tmp, dir)
	argv := append(append([]string{}, s.client()...), s.Hosts[slot], script)
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Stdin = bytes.NewReader(spec.PlanFile)
	if lw := s.logWriter(slot); lw != nil {
		cmd.Stderr = lw
	}
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("transport: pushing plan to %s: %w", s.SlotName(slot), err)
	}
	s.seedMu.Lock()
	if s.seeded == nil {
		s.seeded = make(map[int]bool)
	}
	s.seeded[slot] = true
	s.seedMu.Unlock()
	return nil
}

// client returns the ssh client invocation (Command or the default).
func (s *SSH) client() []string {
	if s.Command != nil {
		return s.Command
	}
	return []string{"ssh", "-o", "BatchMode=yes"}
}

// dir returns the job directory path on the worker side.
func (s *SSH) dir(spec Spec) string {
	if s.Dir != "" {
		return s.Dir
	}
	return spec.Dir
}

// argv builds the full local command line for one lease. The remote part
// is shell-quoted because ssh concatenates its arguments into one string
// for the remote shell.
func (s *SSH) argv(slot int, spec Spec) []string {
	client := s.client()
	bin := s.Binary
	if bin == "" {
		bin = "nbandit"
	}
	remote := append([]string{bin}, WorkerArgs(s.dir(spec), spec)...)
	quoted := make([]string, len(remote))
	for i, a := range remote {
		quoted[i] = shellQuote(a)
	}
	argv := append(append([]string{}, client...), s.Hosts[slot])
	return append(argv, strings.Join(quoted, " "))
}

func (s *SSH) logWriter(slot int) *lineWriter {
	if s.Log == nil {
		return nil
	}
	return &lineWriter{mu: &s.logMu, w: s.Log, prefix: "[" + s.SlotName(slot) + "] "}
}

// shellQuote renders one argument safely for a POSIX remote shell.
func shellQuote(s string) string {
	if s != "" && !strings.ContainsAny(s, " \t\n\"'`$\\*?[]{}()<>|&;~#") {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}

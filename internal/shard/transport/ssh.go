package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// SSH is the Transport that runs workers on remote hosts over plain ssh:
// `ssh <host> <binary> shard run -dir <dir> -cells ... -heartbeat`. One
// slot per Hosts entry; list a host twice to run two workers on it.
//
// With record push-sync (StealCoordinator.PushRecords → Spec.PushRecords)
// the hosts need only the binary and a scratch directory: the transport
// seeds each host's job dir with the pushed plan before its first worker
// starts, and every finished cell's record travels back in-band as a
// checksummed frame on the worker's stdout for the coordinator to persist
// on its own side. Without push-sync, the job directory must instead be
// synced between the coordinator and every host (shared filesystem, rsync
// loop, syncthing, ...): workers write their cell records on their own
// machine, and the merge reads them wherever the directory is assembled.
// Liveness and completion never depend on a sync — they travel in-band as
// heartbeats on the ssh connection's stdout, and a worker whose connection
// dies observes stdin EOF and stops. A stolen cell may end up executed by
// two hosts; that is harmless because records are deterministic — every
// worker produces byte-identical records for the same cell, so whichever
// copy lands (or syncs) last changes nothing.
//
// Authentication is the operator's problem by design: the transport runs
// whatever Command says (default "ssh"), so agent forwarding, jump hosts,
// and per-host users all live in ssh config, not here.
type SSH struct {
	// Hosts are the ssh destinations (user@host works); one worker slot
	// per entry. Required.
	Hosts []string
	// Binary is the worker executable on the remote hosts; "" means
	// "nbandit" on the remote PATH.
	Binary string
	// Dir, when non-empty, overrides the job directory path on the remote
	// side (the coordinator's Spec.Dir is used otherwise).
	Dir string
	// Command is the ssh client invocation; nil means
	// {"ssh", "-o", "BatchMode=yes"} so a missing key fails fast instead
	// of prompting inside a worker slot.
	Command []string
	// Log receives every worker's stderr and non-protocol stdout, each
	// line prefixed with its host. May be nil.
	Log io.Writer
	// ConnectAttempts is how many times the initial connection (the plan
	// push) is tried before the spawn is reported failed; 0 means 3.
	ConnectAttempts int
	// ConnectBackoff is the wait before the first connection retry; it
	// doubles per retry and is capped at 8× the base. 0 means 500ms.
	ConnectBackoff time.Duration

	logMu sync.Mutex

	seedMu sync.Mutex
	seeded map[int]bool // slots whose remote dir already holds the plan
}

// Slots returns one slot per configured host entry.
func (s *SSH) Slots() int { return len(s.Hosts) }

// SlotName names a slot by its host.
func (s *SSH) SlotName(slot int) string {
	if slot < 0 || slot >= len(s.Hosts) {
		return fmt.Sprintf("ssh#%d", slot)
	}
	return "ssh:" + s.Hosts[slot]
}

// Spawn launches one worker on the slot's host, pushing the plan into the
// host's job directory first when the lease carries one (once per slot —
// re-leases reuse the seeded directory). The returned worker classifies
// its exit: the ssh client's own exit status 255 reads as "connect
// failed", anything else the worker earned itself reads as "worker died",
// so coordinator logs distinguish a flaky network from a crashing binary.
func (s *SSH) Spawn(ctx context.Context, slot int, spec Spec) (Worker, error) {
	if slot < 0 || slot >= len(s.Hosts) {
		return nil, FatalSpawn(fmt.Errorf("transport: ssh slot %d out of range [0,%d)", slot, len(s.Hosts)))
	}
	if spec.PlanFile != nil {
		if err := s.seedPlan(ctx, slot, spec); err != nil {
			return nil, err
		}
	}
	w, err := startWorker(ctx, s.argv(slot, spec), s.logWriter(slot))
	if err != nil {
		return nil, err
	}
	return &sshWorker{execWorker: w, name: s.SlotName(slot)}, nil
}

// seedPlan materialises the job directory on the slot's host: one ssh
// round trip that mkdirs the cells directory and lands plan.json via
// cat-to-temp plus mv, the remote spelling of the atomic tmp+rename every
// record write uses. The plan travels on the ssh client's stdin, so no
// scp/sftp subsystem is required on the host. The temp name carries the
// slot index because a host listed twice shares one remote dir: two slots
// seeding concurrently must not write through the same temp file (one
// slot's mv would yank the inode out from under the other's cat, tearing
// plan.json or failing the second mv).
//
// This round trip is also where a dead or flaky connection surfaces
// synchronously, so it is retried with capped exponential backoff
// (ConnectAttempts / ConnectBackoff) before the slot is reported failed —
// a transient error the coordinator's own backoff policy then handles.
func (s *SSH) seedPlan(ctx context.Context, slot int, spec Spec) error {
	s.seedMu.Lock()
	already := s.seeded[slot]
	s.seedMu.Unlock()
	if already {
		return nil
	}
	attempts := s.connectAttempts()
	delay := s.connectBackoff()
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			if lw := s.logWriter(slot); lw != nil {
				lw.writeLine(fmt.Sprintf("connect failed (%v) — retrying in %s (attempt %d/%d)", err, delay, try+1, attempts))
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			if delay *= 2; delay > 8*s.connectBackoff() {
				delay = 8 * s.connectBackoff()
			}
		}
		if err = s.pushPlanOnce(ctx, slot, spec); err == nil {
			s.seedMu.Lock()
			if s.seeded == nil {
				s.seeded = make(map[int]bool)
			}
			s.seeded[slot] = true
			s.seedMu.Unlock()
			return nil
		}
	}
	return fmt.Errorf("transport: connect failed to %s after %d attempt(s): %w", s.SlotName(slot), attempts, err)
}

// pushPlanOnce runs one plan-push round trip.
func (s *SSH) pushPlanOnce(ctx context.Context, slot int, spec Spec) error {
	dir := shellQuote(s.dir(spec))
	tmp := fmt.Sprintf("%s/plan.json.push.%d", dir, slot)
	script := fmt.Sprintf("mkdir -p %s/cells && cat > %s && mv %s %s/plan.json",
		dir, tmp, tmp, dir)
	argv := append(append([]string{}, s.client()...), s.Hosts[slot], script)
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Stdin = bytes.NewReader(spec.PlanFile)
	if lw := s.logWriter(slot); lw != nil {
		cmd.Stderr = lw
	}
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("transport: pushing plan to %s: %w", s.SlotName(slot), err)
	}
	return nil
}

func (s *SSH) connectAttempts() int {
	if s.ConnectAttempts > 0 {
		return s.ConnectAttempts
	}
	return 3
}

func (s *SSH) connectBackoff() time.Duration {
	if s.ConnectBackoff > 0 {
		return s.ConnectBackoff
	}
	return 500 * time.Millisecond
}

// sshWorker wraps the shared exec worker to classify its exit. The ssh
// client reserves exit status 255 for its own failures (connection lost,
// auth refused, host unreachable); any other non-zero status came from
// the remote command itself.
type sshWorker struct {
	*execWorker
	name string
}

// Wait reports the worker's exit, naming connection failures "connect
// failed" and remote-command failures "worker died".
func (w *sshWorker) Wait() error {
	err := w.execWorker.Wait()
	if err == nil {
		return nil
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) && ee.ExitCode() == 255 {
		return fmt.Errorf("transport: connect failed to %s: %w", w.name, err)
	}
	return fmt.Errorf("transport: worker died on %s: %w", w.name, err)
}

// client returns the ssh client invocation (Command or the default).
func (s *SSH) client() []string {
	if s.Command != nil {
		return s.Command
	}
	return []string{"ssh", "-o", "BatchMode=yes"}
}

// dir returns the job directory path on the worker side.
func (s *SSH) dir(spec Spec) string {
	if s.Dir != "" {
		return s.Dir
	}
	return spec.Dir
}

// argv builds the full local command line for one lease. The remote part
// is shell-quoted because ssh concatenates its arguments into one string
// for the remote shell.
func (s *SSH) argv(slot int, spec Spec) []string {
	client := s.client()
	bin := s.Binary
	if bin == "" {
		bin = "nbandit"
	}
	remote := append([]string{bin}, WorkerArgs(s.dir(spec), spec)...)
	quoted := make([]string, len(remote))
	for i, a := range remote {
		quoted[i] = shellQuote(a)
	}
	argv := append(append([]string{}, client...), s.Hosts[slot])
	return append(argv, strings.Join(quoted, " "))
}

func (s *SSH) logWriter(slot int) *lineWriter {
	if s.Log == nil {
		return nil
	}
	return &lineWriter{mu: &s.logMu, w: s.Log, prefix: "[" + s.SlotName(slot) + "] "}
}

// shellQuote renders one argument safely for a POSIX remote shell.
func shellQuote(s string) string {
	if s != "" && !strings.ContainsAny(s, " \t\n\"'`$\\*?[]{}()<>|&;~#") {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}

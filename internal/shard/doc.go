// Package shard turns a sim.Sweep into a distributable, resumable job.
//
// # File protocol
//
// The protocol is a few kinds of files in one shared directory (local
// disk for multi-process runs, any shared or synced filesystem across
// machines):
//
//	dir/plan.json              — the versioned, content-hashed shard plan
//	dir/cells/cell-NNNNNN.json — one checksummed record per finished cell
//	dir/leases.json            — the coordinator's advisory lease snapshot
//
// A plan enumerates the sweep's cells and partitions their indices into N
// shards. Because every replication stream is keyed on (seed, global cell
// index, rep) and every reward X_{i,t} is a pure function of the cell
// stream (counter-based sampling, package rng), a worker needs only the
// plan and the sweep description to produce aggregates bit-identical to a
// single-process run — no coordination of randomness, no ordering
// constraints between workers, and no harm in running a cell twice: any
// two workers produce byte-identical records for the same cell.
//
// Workers write each finished cell's aggregate atomically (tmp+rename),
// so a killed run resumes by scanning completed records; torn or stale
// records fail their checksum or plan-hash check and are treated as
// absent by runners (rerun) and rejected by the merger. Merge folds all
// records back into a sim.SweepResult that is bit-identical to
// sim.Sweep.Run — whichever shards, machines, steals, or interruptions
// produced the records. Completion is defined by the records alone:
// everything else in this package is scheduling.
//
// # Static shards and dynamic leases
//
// There are two ways to execute a plan. The static path (Run with
// RunOptions.Shard) executes one partition of the plan's Assign table —
// hand-driven workers on machines sharing the directory. The dynamic path
// (StealCoordinator) ignores the partition and leases adaptive batches of
// incomplete cells to workers spawned through a transport.Transport
// (local processes or ssh): workers heartbeat over stdout, a lease whose
// heartbeat lapses has its remaining cells stolen back into the queue and
// its worker killed, and batch sizes shrink as the queue drains so the
// tail of a run is never serialised behind one straggler. Each slot's
// batches are further capped by its worker's reported per-cell cost to
// about half a lease timeout of work, bounding what a steal can lose on a
// slow host. Lease state is persisted to dir/leases.json for `nbandit
// shard status`; it is advisory observability, never load-bearing.
//
// # Record sync
//
// How a worker-produced record reaches the coordinator's directory is a
// per-run choice. By default the directory is shared or synced, and the
// worker's atomic rename is itself the delivery. With push-sync
// (StealCoordinator.PushRecords), workers share nothing with the
// coordinator but their stdio: the transport seeds each worker-side
// scratch dir with the plan, every finished record rides the heartbeat
// stream as a checksummed base64 frame, and the coordinator persists it
// locally after verifying the frame checksum, record checksum, plan hash,
// and cell coordinates (VerifyRecordLine). A damaged frame is dropped and
// its cell re-run — it can never reach the disk — so the determinism
// contract is unchanged: the merge of a mountless run is byte-identical
// to sim.Sweep.Run.
//
// See docs/ARCHITECTURE.md for the protocol lifecycle diagrams and
// docs/RUNBOOK.md for operating distributed sweeps (including the
// mountless ssh workflow).
package shard

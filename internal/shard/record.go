package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"netbandit/internal/bandit"
	"netbandit/internal/sim"
)

// A cell record is one finished cell's aggregate, spilled to disk the
// moment the cell's last replication folds. Each record is a single
// checksummed JSONL line in its own file (dir/cells/cell-NNNNNN.json),
// placed by atomic tmp+rename: appends to a shared file are not atomic on
// every filesystem, but a rename is, so readers — resuming runners, the
// status scanner, the merger — never see a partial record, and a record's
// presence is exactly the statement "this cell is done".

// cellRecord is the on-disk schema of one spilled cell.
type cellRecord struct {
	// Plan is the plan hash the record was produced under; records from a
	// different plan (stale directory, different binary) are rejected.
	Plan     string              `json:"plan"`
	Index    int                 `json:"index"`
	Cell     string              `json:"cell"`
	Scenario string              `json:"scenario"`
	Agg      *sim.AggregateState `json:"agg"`
	// Sum is the SHA-256 hex digest of the record's canonical JSON
	// encoding with Sum itself empty — an end-to-end integrity check
	// against torn copies on synced filesystems.
	Sum string `json:"sum,omitempty"`
}

// RecordPath returns the record file for one cell index inside a shard
// directory — where the runner spills the cell and where a push-mode
// worker reads the line it frames onto stdout.
func RecordPath(dir string, index int) string {
	return filepath.Join(cellsDir(dir), fmt.Sprintf("cell-%06d.json", index))
}

// recordPath is the historical internal spelling of RecordPath.
func recordPath(dir string, index int) string { return RecordPath(dir, index) }

// checksum returns the record's canonical digest (Sum field cleared).
func (r *cellRecord) checksum() (string, error) {
	q := *r
	q.Sum = ""
	raw, err := json.Marshal(&q)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// writeCellRecord spills one finished cell under the plan's hash,
// atomically.
func writeCellRecord(dir string, p *Plan, c sim.CellResult) error {
	rec := &cellRecord{
		Plan:     p.Hash,
		Index:    c.Index,
		Cell:     c.Cell,
		Scenario: c.Scenario.String(),
		Agg:      c.Agg.State(),
	}
	var err error
	if rec.Sum, err = rec.checksum(); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return atomicWrite(recordPath(dir, c.Index), append(line, '\n'))
}

// decodeRecordLine parses and fully verifies one record line against the
// plan: checksum, plan hash, index/name/scenario/reps agreement. It is the
// shared gate for records read from disk and records pushed in-band over a
// worker's heartbeat stream — a byte string passes it only if it is a
// complete, untampered record for exactly this plan's cell index.
func decodeRecordLine(raw []byte, p *Plan, index int) (*cellRecord, error) {
	var rec cellRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, err
	}
	want, err := rec.checksum()
	if err != nil {
		return nil, err
	}
	if rec.Sum != want {
		return nil, fmt.Errorf("checksum %.12s does not match content %.12s", rec.Sum, want)
	}
	if rec.Plan != p.Hash {
		return nil, fmt.Errorf("written under plan %.12s, this directory's plan is %.12s", rec.Plan, p.Hash)
	}
	if rec.Index != index {
		return nil, fmt.Errorf("holds cell %d, not %d", rec.Index, index)
	}
	meta := p.Cells[index]
	if rec.Cell != meta.Cell || rec.Scenario != meta.Scenario {
		return nil, fmt.Errorf("holds cell %q (%s), plan says %q (%s)", rec.Cell, rec.Scenario, meta.Cell, meta.Scenario)
	}
	if rec.Agg == nil || rec.Agg.Reps != p.Reps {
		return nil, fmt.Errorf("aggregate has wrong replication count")
	}
	return &rec, nil
}

// VerifyRecordLine checks that raw is a complete, valid record for the
// plan's cell index — the verification a coordinator runs on a pushed
// record frame before persisting it. It never writes anything: a payload
// that fails here is dropped and the cell re-queued, so a corrupt frame
// can cost a re-run but never a corrupt record on disk.
func VerifyRecordLine(raw []byte, p *Plan, index int) error {
	if index < 0 || index >= len(p.Cells) {
		return fmt.Errorf("shard: cell index %d out of range [0,%d)", index, len(p.Cells))
	}
	_, err := decodeRecordLine(raw, p, index)
	return err
}

// persistRecordLine durably writes an already-verified record line into
// the directory's cells/ via the same atomic tmp+rename path the runner
// uses, so stream-pushed and locally-spilled records are indistinguishable
// on disk (trailing newline included).
func persistRecordLine(dir string, index int, raw []byte) error {
	line := make([]byte, 0, len(raw)+1)
	line = append(line, raw...)
	if len(line) == 0 || line[len(line)-1] != '\n' {
		line = append(line, '\n')
	}
	if err := os.MkdirAll(cellsDir(dir), 0o755); err != nil {
		return err
	}
	return atomicWrite(recordPath(dir, index), line)
}

// readCellRecord loads and fully verifies one record against the plan.
func readCellRecord(dir string, p *Plan, index int) (*cellRecord, error) {
	path := recordPath(dir, index)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec, err := decodeRecordLine(raw, p, index)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// result converts a verified record back into a cell result with its
// rebuilt aggregate.
func (r *cellRecord) result(p *Plan) (sim.CellResult, error) {
	agg, err := sim.AggregateFromState(r.Agg)
	if err != nil {
		return sim.CellResult{}, fmt.Errorf("%s: %w", r.Cell, err)
	}
	meta := p.Cells[r.Index]
	scen, err := bandit.ParseScenario(meta.Scenario)
	if err != nil {
		return sim.CellResult{}, fmt.Errorf("%s: %w", r.Cell, err)
	}
	return sim.CellResult{
		Index: meta.Index, Cell: meta.Cell,
		Env: meta.Env, Policy: meta.Policy, Config: meta.Config,
		Scenario: scen,
		Agg:      agg,
	}, nil
}

// scanCompleted reports which of the given cells have a valid record on
// disk. Records that exist but fail verification are returned in bad —
// callers decide whether that means "rerun the cell" (runner) or "refuse
// to merge" (merger). A missing file is simply an incomplete cell.
func scanCompleted(dir string, p *Plan, indices []int) (done map[int]bool, bad map[int]error, err error) {
	done = make(map[int]bool)
	bad = make(map[int]error)
	for _, idx := range indices {
		if idx < 0 || idx >= len(p.Cells) {
			return nil, nil, fmt.Errorf("shard: cell index %d out of range [0,%d)", idx, len(p.Cells))
		}
		if _, rerr := readCellRecord(dir, p, idx); rerr != nil {
			if os.IsNotExist(rerr) {
				continue
			}
			bad[idx] = rerr
			continue
		}
		done[idx] = true
	}
	return done, bad, nil
}

package shard

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"netbandit/internal/shard/transport"
)

// lockedWriter serialises the coordinator's and the chaos transport's log
// lines onto one buffer (they write from different goroutines under
// different locks).
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// soakRates derives one seed's fault mix deterministically, via the same
// splitmix construction the chaos schedule itself uses — no global RNG,
// so a failing seed reproduces from its number alone.
func soakRates(seed uint64) []float64 {
	s := seed*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	out := make([]float64, 7)
	for i := range out {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		out[i] = float64(z>>11) / float64(1<<53)
	}
	return out
}

// TestChaosSoakMergeOrAbort is the chaos layer's core property test: for
// many distinct seeds, across shared-dir and push-records modes, a
// coordinator run under a random fault schedule must end — within a
// deadline — in either a merge byte-identical to the single-process
// golden or an explicit error. Never a hang, never a silently wrong
// merge. A failing subtest names its seed, and the schedule is a pure
// function of that seed, so the failure replays.
func TestChaosSoakMergeOrAbort(t *testing.T) {
	golden := singleProcessGolden(t)
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		push := seed%2 == 1
		mode := "local"
		if push {
			mode = "push"
		}
		t.Run(fmt.Sprintf("seed=%d/mode=%s", seed, mode), func(t *testing.T) {
			t.Parallel()
			// Every third seed also scripts a frozen first worker, so the
			// soak crosses the steal path (chaos partitions usually land
			// after the stub's fast cells are already durable).
			var scripted []stubBehavior
			if seed%3 == 0 {
				scripted = []stubBehavior{freezeWorker(1)}
			}
			c, tr, log := stealFixtureMode(t, 2, push, scripted...)
			shared := &lockedWriter{w: log}
			c.Log = shared
			r := soakRates(uint64(seed))
			ch := &transport.Chaos{
				Inner:         tr,
				Seed:          uint64(seed)*2654435761 + 1,
				SpawnRefusal:  0.30 * r[0],
				Crash:         0.45 * r[1],
				Partition:     0.30 * r[2],
				Stall:         0.30 * r[3],
				DropBeats:     0.40 * r[4],
				CorruptFrame:  0.35 * r[5],
				TruncateFrame: 0.35 * r[6],
				// Longer than the 150ms lease timeout, so stalls and
				// partitions exercise the steal path, not just latency.
				StallFor: 400 * time.Millisecond,
				Log:      shared,
			}
			c.Transport = ch
			c.ChaosSeed = fmt.Sprint(ch.Seed)
			c.BackoffBase = 5 * time.Millisecond
			c.BackoffMax = 40 * time.Millisecond
			c.QuarantinePeriod = 100 * time.Millisecond
			c.MaxRetries = 6
			c.Fallback = testSweep()

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			stats, err := c.Run(ctx)
			if ctx.Err() != nil {
				t.Fatalf("HANG: chaos seed %d (%s mode) exceeded the deadline\n%s", seed, mode, log.String())
			}
			if err != nil {
				// Explicit abort is an acceptable outcome: the invariant is
				// merge-or-abort, not always-merge.
				t.Logf("seed %d aborted explicitly (allowed): %v", seed, err)
				return
			}
			if n := countRecords(t, c.Dir, c.Plan); n != len(c.Plan.Cells) {
				t.Fatalf("run reported success with %d/%d records on disk\n%s", n, len(c.Plan.Cells), log.String())
			}
			mergedEqualsGolden(t, c.Dir, c.Plan, golden)
			t.Logf("seed %d (%s): %d leases, %d steals, %d spawn failures, %d backoffs, %d quarantines, %d probes, %d rejected frames, %d degraded",
				seed, mode, stats.Leases, stats.Steals, stats.SpawnFailures,
				stats.Backoffs, stats.Quarantines, stats.Probes, stats.RejectedFrames, stats.DegradedCells)
		})
	}
}

// TestSoakRatesDeterministic: a seed's fault mix is a pure function of
// the seed (the schedule's own purity is asserted in the transport
// package), and distinct seeds explore distinct mixes.
func TestSoakRatesDeterministic(t *testing.T) {
	a, b, c := soakRates(11), soakRates(11), soakRates(12)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("soakRates(11) differs from itself at %d", i)
		}
		if a[i] < 0 || a[i] >= 1 {
			t.Fatalf("rate %d out of [0,1): %v", i, a[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 11 and 12 produced identical fault mixes")
	}
}

package shard

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"netbandit/internal/bandit"
	"netbandit/internal/sim"
)

// ctxSweep is the contextual shard grid: 2 contextual G(n, p) densities ×
// 2 policies (one context-aware, one fixed-mean), built through the same
// registry the CLI uses. Each call returns a fresh value, as Run and
// Merge require.
func ctxSweep(t *testing.T) *sim.Sweep {
	t.Helper()
	var policies []sim.PolicySpec
	for _, name := range []string{"linucb", "dfl"} {
		spec, err := sim.NewPolicySpec(name, bandit.CSO)
		if err != nil {
			t.Fatal(err)
		}
		policies = append(policies, spec)
	}
	return &sim.Sweep{
		Name: "ctx-shard-test",
		Envs: []sim.EnvSpec{
			sim.ContextualGnpEnv("p=0.3+ctx3", bandit.CSO, 8, 2, 3, 0.3),
			sim.ContextualGnpEnv("p=0.6+ctx3", bandit.CSO, 8, 2, 3, 0.6),
		},
		Policies: policies,
		Config:   sim.Config{Horizon: 100, AnnounceHorizon: true},
		Reps:     3,
		Seed:     91,
	}
}

// TestMergeBitIdenticalContextual extends the shard acceptance criterion
// to contextual cells: per-round feature contexts are re-derived from
// counter streams on whichever shard runs the cell, so the merged output
// must equal a single-process run bit for bit — here with the 2-way
// split's shards running concurrently over the same directory.
func TestMergeBitIdenticalContextual(t *testing.T) {
	res, err := ctxSweep(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	golden := exportJSON(t, res)

	for _, shards := range []int{1, 2} {
		dir := t.TempDir()
		plan, err := NewPlan(ctxSweep(t), nil, shards)
		if err != nil {
			t.Fatal(err)
		}
		if err := WritePlan(dir, plan); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, shards)
		sweeps := make([]*sim.Sweep, shards)
		for s := range sweeps {
			sweeps[s] = ctxSweep(t) // built on the test goroutine: t.Fatal is off-limits below
		}
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				_, errs[s] = Run(context.Background(), dir, plan, sweeps[s], RunOptions{Shard: s})
			}(s)
		}
		wg.Wait()
		for s, err := range errs {
			if err != nil {
				t.Fatalf("%d shards: shard %d: %v", shards, s, err)
			}
		}
		merged, err := Merge(dir, plan)
		if err != nil {
			t.Fatalf("%d shards: merge: %v", shards, err)
		}
		if !bytes.Equal(exportJSON(t, merged), golden) {
			t.Fatalf("%d shards: contextual merge differs from single-process run", shards)
		}
	}
}

package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"netbandit/internal/shard/transport"
)

// flakySpawn wraps a transport so its first failFirst spawns fail with a
// transient error — the refused-connection shape of failure.
type flakySpawn struct {
	transport.Transport
	failFirst int

	mu sync.Mutex
	n  int
}

func (f *flakySpawn) Spawn(ctx context.Context, slot int, spec transport.Spec) (transport.Worker, error) {
	f.mu.Lock()
	n := f.n
	f.n++
	f.mu.Unlock()
	if n < f.failFirst {
		return nil, fmt.Errorf("flaky: connection refused (spawn %d)", n)
	}
	return f.Transport.Spawn(ctx, slot, spec)
}

// fatalTransport refuses every spawn with a fatal (configuration) error.
type fatalTransport struct{ transport.Transport }

func (f *fatalTransport) Spawn(ctx context.Context, slot int, spec transport.Spec) (transport.Worker, error) {
	return nil, transport.FatalSpawn(fmt.Errorf("broken config"))
}

// TestTransientSpawnFailureRetriesWithoutBurningCellRetries: refused
// spawns re-queue the batch, back the slot off, and do NOT count against
// per-cell MaxRetries — with MaxRetries=1, three refusals would otherwise
// abort the run.
func TestTransientSpawnFailureRetriesWithoutBurningCellRetries(t *testing.T) {
	golden := singleProcessGolden(t)
	c, tr, log := stealFixture(t, 2)
	c.Transport = &flakySpawn{Transport: tr, failFirst: 3}
	c.MaxRetries = 1
	c.BackoffBase = 5 * time.Millisecond
	stats, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("run failed despite transient-only spawn errors: %v\n%s", err, log.String())
	}
	if stats.SpawnFailures != 3 {
		t.Fatalf("SpawnFailures = %d, want 3", stats.SpawnFailures)
	}
	if stats.Backoffs == 0 {
		t.Fatal("spawn failures earned no backoff")
	}
	if !strings.Contains(log.String(), "backing off") {
		t.Fatalf("backoff not logged:\n%s", log.String())
	}
	if stats.Requeued != 0 {
		t.Fatalf("Requeued = %d: spawn failures must not count as worker-exit requeues", stats.Requeued)
	}
	mergedEqualsGolden(t, c.Dir, c.Plan, golden)
}

// TestFatalSpawnErrorAbortsRun: a configuration error (FatalSpawn) aborts
// immediately instead of cycling through backoff and quarantine.
func TestFatalSpawnErrorAbortsRun(t *testing.T) {
	c, tr, _ := stealFixture(t, 1)
	c.Transport = &fatalTransport{Transport: tr}
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "broken config") {
			t.Fatalf("want fast abort with the config error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fatal spawn error did not abort the run")
	}
}

// TestWorkerCrashBacksOffSlot: a worker that exits with unfinished cells
// costs its slot a backoff, and the run still completes byte-identically.
func TestWorkerCrashBacksOffSlot(t *testing.T) {
	golden := singleProcessGolden(t)
	c, _, log := stealFixture(t, 2, crashWorker(0))
	c.BackoffBase = 5 * time.Millisecond
	stats, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, log.String())
	}
	if stats.Backoffs == 0 {
		t.Fatal("crashed worker earned no backoff")
	}
	mergedEqualsGolden(t, c.Dir, c.Plan, golden)
}

// healthHarness fabricates a stealRun around a planned fixture so the
// state machine can be driven directly, without worker scheduling races.
func healthHarness(t *testing.T, slots int) (*stealRun, *StealCoordinator) {
	t.Helper()
	c, _, _ := stealFixture(t, slots)
	c.BackoffBase = 10 * time.Millisecond
	c.QuarantineAfter = 2
	c.QuarantinePeriod = 40 * time.Millisecond
	st := &stealRun{
		c:        c,
		slots:    slots,
		done:     map[int]bool{},
		attempts: map[int]int{},
		active:   map[int]*lease{},
		costs:    map[int]*slotCost{},
		health:   map[int]*slotHealth{},
		m:        newCoordMetrics(nil),
	}
	st.cond = sync.NewCond(&st.mu)
	st.ctx, st.cancel = context.WithCancel(context.Background())
	t.Cleanup(st.cancel)
	for i := range c.Plan.Cells {
		st.queue = append(st.queue, i)
	}
	st.left = len(st.queue)
	return st, c
}

// TestSlotHealthStateMachine walks one slot through the whole machine:
// backoff on early failures, quarantine at the threshold, probe on
// expiry, re-quarantine on probe failure, dead after repeated cycles —
// and full forgiveness on success.
func TestSlotHealthStateMachine(t *testing.T) {
	st, c := healthHarness(t, 2)
	st.mu.Lock()
	defer st.mu.Unlock()

	boom := fmt.Errorf("boom")
	st.slotFailureLocked(0, boom)
	if h := st.health[0]; h.state != slotBackoff || h.consec != 1 {
		t.Fatalf("after 1 failure: %+v, want backoff/1", h)
	}
	if d := c.backoffDelay(0, 1); d < c.backoffBase() || d > c.backoffBase()+c.backoffBase()/2 {
		t.Fatalf("backoffDelay(1) = %v, want base plus at most half-base jitter", d)
	}
	if c.backoffDelay(0, 1) != c.backoffDelay(0, 1) {
		t.Fatal("backoff jitter is not deterministic")
	}
	if c.backoffDelay(0, 10) > c.backoffMax()+c.backoffBase() {
		t.Fatalf("backoffDelay(10) = %v exceeds the cap", c.backoffDelay(0, 10))
	}

	st.slotFailureLocked(0, boom)
	h := st.health[0]
	if h.state != slotQuarantined || h.quarantines != 1 {
		t.Fatalf("after QuarantineAfter failures: %+v, want quarantined/1 cycle", h)
	}
	if st.degraded {
		t.Fatal("one quarantined slot of two must not trip degraded mode")
	}

	// Quarantine served: take must convert it into a 1-cell probe lease.
	h.until = c.clock().Add(-time.Millisecond)
	st.mu.Unlock()
	l := st.take(0)
	st.mu.Lock()
	if l == nil || len(l.batch) != 1 {
		t.Fatalf("expired quarantine granted %+v, want a 1-cell probe", l)
	}
	if st.health[0].state != slotProbing || st.stats.Probes != 1 {
		t.Fatalf("state %v probes %d, want probing/1", st.health[0].state, st.stats.Probes)
	}

	// Failed probe: back to quarantine with a second cycle.
	delete(st.active, l.id)
	st.requeueLocked(l.batch)
	st.slotFailureLocked(0, boom)
	if h := st.health[0]; h.state != slotQuarantined || h.quarantines != 2 {
		t.Fatalf("failed probe: %+v, want quarantined/2 cycles", h)
	}

	// Two more failed probe cycles kill the slot.
	for i := 0; i < 2; i++ {
		st.health[0].state = slotProbing
		st.slotFailureLocked(0, boom)
	}
	if h := st.health[0]; h.state != slotDead {
		t.Fatalf("after %d failed probe cycles: %+v, want dead", deadAfterQuarantines, h)
	}

	// A dead slot's take returns nil without work.
	st.mu.Unlock()
	if l := st.take(0); l != nil {
		t.Fatalf("dead slot was granted lease %+v", l)
	}
	st.mu.Lock()

	// Success on the healthy slot forgives everything.
	st.slotFailureLocked(1, boom)
	st.slotSuccessLocked(1)
	if h := st.health[1]; h.state != slotOK || h.consec != 0 || h.quarantines != 0 {
		t.Fatalf("success did not reset slot 1: %+v", h)
	}
}

// TestDegradedModeCompletesInProcess: one slot whose workers always crash
// drives the coordinator into quarantine; with a Fallback sweep the run
// finishes the cells in-process and the merge is still byte-identical.
func TestDegradedModeCompletesInProcess(t *testing.T) {
	golden := singleProcessGolden(t)
	crashes := make([]stubBehavior, 8)
	for i := range crashes {
		crashes[i] = crashWorker(0)
	}
	c, _, log := stealFixture(t, 1, crashes...)
	c.BackoffBase = 5 * time.Millisecond
	c.QuarantineAfter = 2
	c.MaxRetries = 100 // the cells are innocent; let slot health decide
	c.Fallback = testSweep()
	stats, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("degraded run failed: %v\n%s", err, log.String())
	}
	if stats.DegradedCells != len(c.Plan.Cells) {
		t.Fatalf("DegradedCells = %d, want %d (all cells finished in-process)", stats.DegradedCells, len(c.Plan.Cells))
	}
	if stats.Quarantines == 0 {
		t.Fatal("crash-only slot never quarantined")
	}
	if !strings.Contains(log.String(), "degraded mode") {
		t.Fatalf("degraded transition not logged:\n%s", log.String())
	}
	mergedEqualsGolden(t, c.Dir, c.Plan, golden)

	// The persisted snapshot records the degraded completion and retries.
	ls, err := ReadLeaseState(c.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if ls.DegradedCells != stats.DegradedCells {
		t.Fatalf("leases.json DegradedCells = %d, want %d", ls.DegradedCells, stats.DegradedCells)
	}
	if len(ls.Retries) == 0 {
		t.Fatal("leases.json has no per-cell retry counts after repeated crashes")
	}
}

// TestDegradedModeWithoutFallbackAborts: the same dead-end without a
// Fallback ends in an explicit error naming the stranded cells — never a
// hang.
func TestDegradedModeWithoutFallbackAborts(t *testing.T) {
	crashes := make([]stubBehavior, 8)
	for i := range crashes {
		crashes[i] = crashWorker(0)
	}
	c, _, _ := stealFixture(t, 1, crashes...)
	c.BackoffBase = 5 * time.Millisecond
	c.QuarantineAfter = 2
	c.MaxRetries = 100
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "dead or quarantined") {
			t.Fatalf("want explicit degraded abort, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("degraded dead-end hung instead of aborting")
	}
}

// TestLeaseStateOldSchemaStillParses: a leases.json written before the
// resilience fields existed must load cleanly with zero values — the
// compat contract for `shard status` across versions.
func TestLeaseStateOldSchemaStillParses(t *testing.T) {
	dir := t.TempDir()
	old := map[string]any{
		"plan": "abc123", "time": time.Now().UTC(), "done": 3, "total": 6,
		"queued": 1, "leases": 4, "steals": 1,
		"active": []map[string]any{{
			"id": 2, "slot": "local#0", "cells": []int{4, 5}, "done": 1,
			"granted": time.Now().UTC(), "last_beat": time.Now().UTC(),
		}},
	}
	raw, err := json.MarshalIndent(old, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(LeaseStatePath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ls, err := ReadLeaseState(dir)
	if err != nil {
		t.Fatalf("old-schema leases.json no longer parses: %v", err)
	}
	if ls.Plan != "abc123" || ls.Done != 3 || len(ls.Active) != 1 {
		t.Fatalf("old fields mangled: %+v", ls)
	}
	if ls.Retries != nil || ls.Health != nil || ls.ChaosSeed != "" || ls.DegradedCells != 0 {
		t.Fatalf("new fields must zero-default on old files: %+v", ls)
	}
}

// TestLeaseStateHealthRoundTrip: the new snapshot fields survive a
// marshal/unmarshal cycle.
func TestLeaseStateHealthRoundTrip(t *testing.T) {
	dir := t.TempDir()
	when := time.Now().UTC().Truncate(time.Second)
	in := &LeaseState{
		Plan: "p", Time: when, Done: 1, Total: 6,
		Retries:       map[string]int{"p=0.2/DFL-SSO": 2},
		Health:        []SlotHealthInfo{{Slot: "ssh:h1", State: "quarantined", Failures: 3, Quarantines: 1, ReadmitAt: when.Add(time.Minute)}},
		ChaosSeed:     "17",
		DegradedCells: 2,
	}
	raw, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(LeaseStatePath(dir), append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := ReadLeaseState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if out.Retries["p=0.2/DFL-SSO"] != 2 || len(out.Health) != 1 || out.ChaosSeed != "17" || out.DegradedCells != 2 {
		t.Fatalf("round trip lost resilience fields: %+v", out)
	}
	if h := out.Health[0]; h.State != "quarantined" || !h.ReadmitAt.Equal(when.Add(time.Minute)) {
		t.Fatalf("health entry mangled: %+v", h)
	}
}

package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"netbandit/internal/obs"
	"netbandit/internal/shard/transport"
	"netbandit/internal/sim"
)

// This file implements the dynamic coordinator: instead of freezing the
// cell→worker assignment in the plan (the static Assign partition, still
// used by hand-driven `shard run -shard N` workers), the StealCoordinator
// keeps one queue of incomplete cells and leases batches of it to workers
// spawned through a Transport. Work-stealing falls out of the lease rules:
//
//   - a worker that finishes its batch comes back for another lease, so
//     fast workers drain the queue instead of idling next to slow ones
//     (combinatorial cells vary wildly in cost with |F| and K);
//   - a lease whose heartbeat lapses is expired — its remaining cells go
//     back to the queue for any other worker to take (straggler
//     re-assignment), and the straggler is killed;
//   - batch sizes shrink as the queue drains, so the tail of the run is
//     never serialised behind one large final batch — and each slot's
//     batches are additionally capped by its observed per-cell cost, so a
//     slow host never holds more than about half a lease timeout of work;
//   - with PushRecords, workers frame each finished record onto their
//     heartbeat stream and the coordinator persists it locally after full
//     verification, which removes the shared-directory requirement
//     entirely (the transport seeds worker scratch dirs with the plan).
//
// None of this can change the science: records are deterministic (a cell's
// record is byte-identical no matter which worker produces it, because
// replication streams are keyed on the global cell index and rewards on
// (stream, arm, t)), so duplicated execution — a stolen cell finished by
// both the straggler and the thief — merges to the same bytes as a
// single-process run.

// StealCoordinator executes a plan by leasing cell batches to workers
// spawned through a Transport, re-leasing cells whose worker stops
// heartbeating, and shrinking batches as the queue drains.
type StealCoordinator struct {
	// Plan is the job being executed. Required.
	Plan *Plan
	// Dir is the job directory holding plan.json and cells/ on the
	// coordinator's side. Required.
	Dir string
	// Transport spawns and monitors the workers. Required.
	Transport transport.Transport
	// LeaseTimeout is how long a lease may go without a heartbeat before
	// its remaining cells are stolen and the worker is killed; 0 means
	// 30s. Workers beat every second plus once per finished cell, so the
	// timeout should stay well above both the beat interval and the job
	// directory's sync latency — never below ~3s in production.
	LeaseTimeout time.Duration
	// MaxBatch caps the number of cells per lease; 0 means no cap beyond
	// the adaptive half-fair-share rule (see nextBatch).
	MaxBatch int
	// MaxRetries is how many times one cell may be returned to the queue
	// by a failing worker (exit without a record, spawn churn) before the
	// run aborts; 0 means 3. Steals do not count — a straggler is the
	// machine's fault, not the cell's.
	MaxRetries int
	// Workers is the worker-pool size inside each spawned process
	// (0 = the worker's GOMAXPROCS).
	Workers int
	// PushRecords runs the job mountless: workers frame each finished
	// cell's record onto their heartbeat stream, the coordinator verifies
	// every frame against the plan (frame checksum, record checksum, plan
	// hash, cell coordinates) and persists it into Dir via the atomic
	// tmp+rename path — no shared or synced job directory is needed, and
	// the transport seeds worker-side scratch dirs with the plan. A frame
	// that fails verification is dropped and its cell re-run; completion is
	// then defined solely by records on the coordinator's own disk.
	PushRecords bool
	// Progress forwards -progress to every worker; the per-replication
	// streams arrive on Log, prefixed per slot.
	Progress bool
	// Log, when non-nil, receives coordinator events (grants, steals,
	// failures) and the workers' prefixed stderr.
	Log io.Writer
	// BackoffBase is the wait before a failed slot's first re-lease; it
	// doubles per consecutive failure (with deterministic jitter, see
	// backoffDelay) up to BackoffMax. 0 means 250ms.
	BackoffBase time.Duration
	// BackoffMax caps the per-slot backoff; 0 means 16× BackoffBase.
	BackoffMax time.Duration
	// QuarantineAfter is how many consecutive failures put a slot in
	// quarantine (no leases until a timed re-admission probe); 0 means 3.
	QuarantineAfter int
	// QuarantinePeriod is the first quarantine's length; it doubles per
	// failed re-admission probe. 0 means 2× the lease timeout.
	QuarantinePeriod time.Duration
	// Fallback, when non-nil, is the sweep the plan was built from; it
	// enables degraded-mode completion — if every slot ends up dead or
	// quarantined, the coordinator finishes the remaining cells in-process
	// through this sweep instead of hanging or aborting. Nil means such a
	// run aborts explicitly.
	Fallback *sim.Sweep
	// ChaosSeed, when non-empty, labels the fault-injection schedule the
	// transport is running under (nbandit chaos); it is persisted in
	// leases.json so `shard status` shows which schedule a run replays.
	ChaosSeed string
	// Journal, when non-nil, is the flight recorder: every lease grant,
	// steal, retry, health transition, pushed or rejected record frame, and
	// completed cell is appended as a typed event carrying the plan hash
	// and chaos seed. Nil (the default) records nothing at zero cost; the
	// journal is advisory, like leases.json — it never affects the run.
	Journal *obs.Recorder
	// Metrics, when non-nil, receives the coordinator's live series
	// (cells done, queue depth, steals, retries, per-slot health and cost,
	// cell-latency histogram) for the /metrics endpoint. Nil disables.
	Metrics *obs.Registry

	// now is a test seam for lease-expiry clocks; nil means time.Now.
	now func() time.Time
}

// StealStats reports what one StealCoordinator.Run did.
type StealStats struct {
	// Cells is the plan's total cell count.
	Cells int
	// Resumed is how many cells already had a valid record when the
	// coordinator started.
	Resumed int
	// Completed is how many cells gained a record during this run.
	Completed int
	// Leases is the total number of leases granted.
	Leases int
	// Steals is how many leases expired and had their remaining cells
	// re-queued.
	Steals int
	// Requeued is how many cells were returned to the queue by workers
	// that exited without finishing them (excluding steals).
	Requeued int
	// Pushed is how many record frames arrived over worker streams,
	// verified, and were persisted on the coordinator's side (PushRecords
	// runs only).
	Pushed int
	// RejectedFrames is how many pushed record frames failed verification
	// and were dropped; their cells were re-run instead of trusted.
	RejectedFrames int
	// SpawnFailures is how many worker spawns failed transiently (refused
	// connection, chaos injection); their cells returned to the queue
	// without burning per-cell retries.
	SpawnFailures int
	// Backoffs, Quarantines, and Probes count slot-health transitions:
	// timed waits before re-leasing a failed slot, benchings after
	// repeated failures, and 1-cell re-admission leases after quarantine.
	Backoffs    int
	Quarantines int
	Probes      int
	// DegradedCells is how many cells were finished in-process after every
	// slot died or was quarantined (degraded-mode completion).
	DegradedCells int
}

// nextBatch sizes the next lease when queued cells remain: roughly half a
// fair share of the queue per slot, so early leases are large (amortising
// worker spawn cost) and the tail of the run degrades to single-cell
// leases that no slot waits long behind. costCap, when positive, is the
// slot's cost-seeded ceiling — how many cells fit in about half a lease
// timeout at the worker's observed per-cell cost — so a slow host is never
// handed more work than a steal could lose cheaply. The size is monotone
// non-decreasing in queued for fixed slots and caps — as the queue drains,
// batches only shrink.
func nextBatch(queued, slots, maxBatch, costCap int) int {
	if queued <= 0 {
		return 0
	}
	if slots < 1 {
		slots = 1
	}
	b := (queued + 2*slots - 1) / (2 * slots)
	if costCap > 0 && b > costCap {
		b = costCap
	}
	if maxBatch > 0 && b > maxBatch {
		b = maxBatch
	}
	if b < 1 {
		b = 1
	}
	return b
}

// lease is one granted batch: the cells the worker still owes, and the
// heartbeat clock that keeps the ownership alive.
type lease struct {
	id      int
	slot    int
	batch   []int        // granted cells, ascending (spawn spec)
	cells   map[int]bool // remaining: granted minus completed
	granted time.Time
	last    time.Time // most recent heartbeat
	worker  transport.Worker
	stolen  bool
}

// slotCost is one slot's online estimate of its worker's per-cell
// wall-clock cost, folded from the costs reported on cell heartbeats.
type slotCost struct {
	n      int     // cost reports folded in
	meanMS float64 // online mean per-cell wall clock, milliseconds
}

// fold adds one reported cost to the online mean.
func (sc *slotCost) fold(ms float64) {
	sc.n++
	sc.meanMS += (ms - sc.meanMS) / float64(sc.n)
}

// stealRun is the mutable state of one Run, guarded by mu.
type stealRun struct {
	c        *StealCoordinator
	ctx      context.Context
	cancel   context.CancelFunc
	slots    int
	planFile []byte // plan.json bytes pushed to mountless workers

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []int // incomplete, unleased cells, ascending
	done     map[int]bool
	left     int // incomplete cell count (queued + leased)
	attempts map[int]int
	active   map[int]*lease
	costs    map[int]*slotCost   // per-slot cell-cost estimates
	health   map[int]*slotHealth // per-slot resilience state (health.go)
	degraded bool                // every slot dead/quarantined; finish in-process
	nextID   int
	stats    StealStats
	failure  error
	m        *coordMetrics // instruments; built even for a nil registry
}

// costCapLocked translates a slot's cost estimate into a lease-size
// ceiling: the number of cells that fit in half a lease timeout. Zero
// means "no estimate yet" — the first lease to a slot is sized by fair
// share alone.
func (st *stealRun) costCapLocked(slot int) int {
	sc := st.costs[slot]
	if sc == nil || sc.meanMS <= 0 {
		return 0
	}
	limit := int(float64(st.c.leaseTimeout().Milliseconds()) / 2 / sc.meanMS)
	if limit < 1 {
		limit = 1
	}
	return limit
}

func (c *StealCoordinator) clock() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

func (c *StealCoordinator) leaseTimeout() time.Duration {
	if c.LeaseTimeout > 0 {
		return c.LeaseTimeout
	}
	return 30 * time.Second
}

func (c *StealCoordinator) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 3
}

func (c *StealCoordinator) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, "coordinator: "+format+"\n", args...)
	}
}

// Run drives the queue dry: it scans dir/cells for already-completed
// records, leases the rest to workers, steals from stragglers, and returns
// once every cell of the plan has a valid record (merge-ready) or the run
// has failed. A failure kills every outstanding worker; completed cells
// stay on disk, so a relaunched coordinator resumes where this one ended.
func (c *StealCoordinator) Run(ctx context.Context) (StealStats, error) {
	if c.Plan == nil || c.Transport == nil || c.Dir == "" {
		return StealStats{}, errors.New("shard: steal coordinator needs a Plan, a Dir, and a Transport")
	}
	if err := c.Plan.check(); err != nil {
		return StealStats{}, err
	}
	slots := c.Transport.Slots()
	if slots < 1 {
		return StealStats{}, errors.New("shard: transport has no worker slots")
	}
	if err := os.MkdirAll(cellsDir(c.Dir), 0o755); err != nil {
		return StealStats{}, err
	}
	all := make([]int, len(c.Plan.Cells))
	for i := range all {
		all[i] = i
	}
	completed, _, err := scanCompleted(c.Dir, c.Plan, all)
	if err != nil {
		return StealStats{}, err
	}

	st := &stealRun{
		c:        c,
		slots:    slots,
		done:     completed,
		attempts: make(map[int]int),
		active:   make(map[int]*lease),
		costs:    make(map[int]*slotCost),
		health:   make(map[int]*slotHealth),
		m:        newCoordMetrics(c.Metrics),
	}
	if c.PushRecords {
		// The plan travels to mountless workers inside the lease spec; it is
		// marshalled once here, in the exact shape WritePlan produces, so a
		// seeded scratch dir is indistinguishable from a planned one.
		raw, err := json.MarshalIndent(c.Plan, "", "  ")
		if err != nil {
			return StealStats{}, err
		}
		st.planFile = append(raw, '\n')
	}
	st.cond = sync.NewCond(&st.mu)
	st.stats = StealStats{Cells: len(all), Resumed: len(completed)}
	for _, idx := range all {
		if !completed[idx] {
			st.queue = append(st.queue, idx)
		}
	}
	st.left = len(st.queue)
	c.logf("%d cells, %d already on disk, %d to run over %d slot(s), lease timeout %s",
		len(all), len(completed), st.left, slots, c.leaseTimeout())
	c.jot(obs.EvPlan, -1, -1, -1, "%d cell(s), %d resumed, %d slot(s), lease timeout %s",
		len(all), len(completed), slots, c.leaseTimeout())
	if st.left == 0 {
		st.persistLocked() // legal without mu: no goroutines yet
		c.jot(obs.EvRunEnd, -1, -1, -1, "complete: all %d cell(s) resumed from disk", len(all))
		return st.stats, nil
	}

	st.ctx, st.cancel = context.WithCancel(ctx)
	defer st.cancel()

	// Wake blocked slots when the caller cancels, so they can observe it.
	go func() {
		<-st.ctx.Done()
		st.mu.Lock()
		st.killActiveLocked()
		st.cond.Broadcast()
		st.mu.Unlock()
	}()

	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		st.monitor()
	}()

	var wg sync.WaitGroup
	for s := 0; s < slots; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for {
				l := st.take(slot)
				if l == nil {
					return
				}
				st.runLease(l)
			}
		}(s)
	}
	wg.Wait()
	st.finishDegraded()
	st.cancel()
	<-monitorDone

	st.mu.Lock()
	st.persistLocked()
	stats, failure, left := st.stats, st.failure, st.left
	st.mu.Unlock()
	if failure != nil {
		c.jot(obs.EvRunEnd, -1, -1, -1, "failed: %v", failure)
		return stats, failure
	}
	if err := ctx.Err(); err != nil {
		c.jot(obs.EvRunEnd, -1, -1, -1, "cancelled: %v", err)
		return stats, fmt.Errorf("shard: coordinator cancelled: %w", err)
	}
	if left != 0 {
		c.jot(obs.EvRunEnd, -1, -1, -1, "internal error: %d cell(s) unaccounted for", left)
		return stats, fmt.Errorf("shard: internal error: %d cell(s) unaccounted for", left)
	}
	c.logf("complete: %d cell(s) run, %d lease(s), %d steal(s)", stats.Completed, stats.Leases, stats.Steals)
	c.jot(obs.EvRunEnd, -1, -1, -1, "complete: %d cell(s) run, %d lease(s), %d steal(s)",
		stats.Completed, stats.Leases, stats.Steals)
	return stats, nil
}

// take blocks until a batch can be leased to slot, all work is done, or
// the run is aborted; it returns nil in the latter two cases. A slot in
// backoff or quarantine waits out its penalty here (the monitor's tick
// broadcast re-checks the clock); a dead slot never leases again; an
// expired quarantine converts into a single-cell re-admission probe.
func (st *stealRun) take(slot int) *lease {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.failure != nil || st.ctx.Err() != nil || st.left == 0 || st.degraded {
			return nil
		}
		h := st.healthLocked(slot)
		if h.state == slotDead {
			st.checkDegradedLocked()
			return nil
		}
		if (h.state == slotBackoff || h.state == slotQuarantined) && st.c.clock().Before(h.until) {
			st.cond.Wait()
			continue
		}
		if h.state == slotBackoff {
			h.state = slotOK
			st.c.jotHealth(slot, slotBackoff, slotOK)
		}
		if len(st.queue) > 0 {
			n := nextBatch(len(st.queue), st.slots, st.c.MaxBatch, st.costCapLocked(slot))
			if h.state == slotQuarantined {
				// Quarantine served: the next lease is a 1-cell probe —
				// cheap to lose if the slot is still sick.
				h.state = slotProbing
				n = 1
				st.stats.Probes++
				st.m.probes.Inc()
				st.c.logf("%s: quarantine expired — granting a 1-cell re-admission probe",
					st.c.Transport.SlotName(slot))
				st.c.jotHealth(slot, slotQuarantined, slotProbing)
			}
			batch := append([]int(nil), st.queue[:n]...)
			st.queue = append(st.queue[:0], st.queue[n:]...)
			now := st.c.clock()
			l := &lease{
				id: st.nextID, slot: slot, batch: batch,
				cells: make(map[int]bool, len(batch)), granted: now, last: now,
			}
			for _, idx := range batch {
				l.cells[idx] = true
			}
			st.nextID++
			st.active[l.id] = l
			st.stats.Leases++
			st.m.leases.Inc()
			st.c.logf("lease %d → %s: %d cell(s) %v (%d queued)",
				l.id, st.c.Transport.SlotName(slot), len(batch), batch, len(st.queue))
			st.c.jot(obs.EvLeaseGrant, slot, l.id, -1, "%d cell(s) %v (%d queued)",
				len(batch), batch, len(st.queue))
			st.persistLocked()
			return l
		}
		st.cond.Wait()
	}
}

// runLease spawns the worker for one lease, consumes its heartbeats, and
// settles the lease when the worker exits.
func (st *stealRun) runLease(l *lease) {
	spec := transport.Spec{
		Dir: st.c.Dir, Cells: l.batch, Workers: st.c.Workers, Progress: st.c.Progress,
		PushRecords: st.c.PushRecords, PlanFile: st.planFile,
	}
	w, err := st.c.Transport.Spawn(st.ctx, l.slot, spec)
	if err != nil {
		if transport.IsFatalSpawn(err) {
			// A transport misconfigured in a way retries cannot fix
			// (missing binary, slot out of range): abort the run.
			st.c.jot(obs.EvSpawnFail, l.slot, l.id, -1, "fatal: %v", err)
			st.fail(fmt.Errorf("shard: spawning worker on %s: %w", st.c.Transport.SlotName(l.slot), err))
			st.mu.Lock()
			delete(st.active, l.id)
			st.mu.Unlock()
			return
		}
		// Transient spawn failure (refused connection, flaky host): the
		// batch returns to the queue without burning per-cell retries —
		// the cells did nothing wrong — and the slot pays in health.
		st.mu.Lock()
		delete(st.active, l.id)
		if st.failure == nil && st.ctx.Err() == nil {
			st.stats.SpawnFailures++
			st.m.spawnFails.Inc()
			st.requeueLocked(sortedCells(l.cells))
			st.c.logf("lease %d on %s: spawn failed (%v) — %d cell(s) re-queued",
				l.id, st.c.Transport.SlotName(l.slot), err, len(l.cells))
			st.c.jot(obs.EvSpawnFail, l.slot, l.id, -1, "%v — %d cell(s) re-queued", err, len(l.cells))
			st.slotFailureLocked(l.slot, err)
			st.persistLocked()
		}
		st.cond.Broadcast()
		st.mu.Unlock()
		return
	}
	st.c.jot(obs.EvSpawn, l.slot, l.id, -1, "%d cell(s)", len(l.batch))
	st.mu.Lock()
	l.worker = w
	if st.failure != nil || st.ctx.Err() != nil || l.stolen {
		// The run aborted (or a zero-timeout monitor expired the lease)
		// while the spawn was in flight.
		w.Kill()
	}
	st.mu.Unlock()

	for ev := range w.Events() {
		st.observe(l, ev)
	}
	st.settle(l, w.Wait())
}

// observe applies one heartbeat to the lease. In push mode a cell event
// only counts once its record frame has been verified against the plan and
// durably written on the coordinator's side — the verification and the
// disk write happen without the lock held, so a slow disk never stalls
// the monitor, and the heartbeat clock is refreshed before the write, so
// a burst of pushed frames grinding through a slow coordinator disk never
// lets the (alive, frame-emitting) worker's lease lapse behind its own
// queued events. Every event, including one carrying a corrupt frame,
// refreshes the clock: a worker emitting garbage frames is alive, just
// not trusted.
func (st *stealRun) observe(l *lease, ev transport.Event) {
	st.mu.Lock()
	l.last = st.c.clock()
	st.mu.Unlock()

	persisted := false
	var frameErr error
	if ev.Kind == transport.EventCell && st.c.PushRecords &&
		ev.Cell >= 0 && ev.Cell < len(st.c.Plan.Cells) {
		switch {
		case len(ev.Payload) == 0:
			frameErr = errors.New("no record payload on cell event in push mode (worker missing -push-records?)")
		default:
			if err := VerifyRecordLine(ev.Payload, st.c.Plan, ev.Cell); err != nil {
				frameErr = err
			} else if err := persistRecordLine(st.c.Dir, ev.Cell, ev.Payload); err != nil {
				// The frame was fine but the coordinator's own disk failed:
				// that is terminal, not the worker's fault.
				st.fail(fmt.Errorf("shard: persisting pushed record for cell %d: %w", ev.Cell, err))
				return
			} else {
				persisted = true
			}
		}
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	switch ev.Kind {
	case transport.EventStart:
		if ev.Plan != "" && ev.Plan != st.c.Plan.Hash {
			st.failLocked(fmt.Errorf("shard: worker on %s runs plan %.12s, coordinator holds %.12s — mismatched directories or binaries",
				st.c.Transport.SlotName(l.slot), ev.Plan, st.c.Plan.Hash))
		}
	case transport.EventCell:
		if ev.Cell < 0 || ev.Cell >= len(st.c.Plan.Cells) {
			return
		}
		if ev.Cost > 0 {
			sc := st.costs[l.slot]
			if sc == nil {
				sc = &slotCost{}
				st.costs[l.slot] = sc
			}
			sc.fold(float64(ev.Cost.Milliseconds()))
			st.m.cellSeconds.Observe(ev.Cost.Seconds())
		}
		costMS := float64(ev.Cost.Milliseconds())
		if st.c.PushRecords {
			if frameErr != nil {
				st.stats.RejectedFrames++
				st.m.rejected.Inc()
				st.c.logf("lease %d on %s: dropped record frame for cell %d (%v) — the cell will be re-run",
					l.id, st.c.Transport.SlotName(l.slot), ev.Cell, frameErr)
				st.c.jot(obs.EvFrameReject, l.slot, l.id, ev.Cell, "%v", frameErr)
				return
			}
			if persisted {
				st.stats.Pushed++
				st.m.pushed.Inc()
				st.c.jot(obs.EvRecordPush, l.slot, l.id, ev.Cell, "%d byte(s) verified and persisted", len(ev.Payload))
				st.markDoneLocked(ev.Cell, l, costMS)
			}
			return
		}
		st.markDoneLocked(ev.Cell, l, costMS)
	}
}

// markDoneLocked records one durable cell. The cell leaves every lease and
// the queue: a stolen cell can be finished by the original straggler (a
// zombie whose records are byte-identical) while its re-lease is queued or
// running, and both outcomes must count it exactly once. ms is the cell's
// reported wall-clock cost for the journal (0 when unknown: settle-time
// claims, degraded-mode completions).
func (st *stealRun) markDoneLocked(idx int, l *lease, ms float64) {
	if l != nil {
		delete(l.cells, idx)
	}
	if st.done[idx] {
		return
	}
	st.done[idx] = true
	st.left--
	st.stats.Completed++
	slot, leaseID := -1, -1
	if l != nil {
		slot, leaseID = l.slot, l.id
	}
	st.c.jotMS(obs.EvCellDone, slot, leaseID, idx, ms, "")
	for _, other := range st.active {
		delete(other.cells, idx)
	}
	// The queue is kept ascending (take pops a prefix, requeueLocked
	// re-sorts), so membership is a binary search, not a scan.
	if i := sort.SearchInts(st.queue, idx); i < len(st.queue) && st.queue[i] == idx {
		st.queue = append(st.queue[:i], st.queue[i+1:]...)
	}
	if st.left == 0 {
		// Finished: reclaim every outstanding worker (stolen-from
		// stragglers still wedged in Wait included) and release the slots.
		st.killActiveLocked()
		st.cond.Broadcast()
	}
}

// settle closes out a lease after its worker exited: cells whose records
// are on disk but whose heartbeat line was lost (worker killed between
// rename and write) are claimed, the rest return to the queue.
func (st *stealRun) settle(l *lease, exitErr error) {
	st.mu.Lock()
	remaining := sortedCells(l.cells)
	st.mu.Unlock()

	var onDisk map[int]bool
	if len(remaining) > 0 {
		onDisk, _, _ = scanCompleted(st.c.Dir, st.c.Plan, remaining)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	for _, idx := range remaining {
		if onDisk[idx] {
			st.markDoneLocked(idx, l, 0)
		}
	}
	unfinished := sortedCells(l.cells)
	delete(st.active, l.id)
	if len(unfinished) > 0 && !l.stolen && st.failure == nil && st.ctx.Err() == nil {
		st.stats.Requeued += len(unfinished)
		st.m.requeued.Add(int64(len(unfinished)))
		for _, idx := range unfinished {
			st.attempts[idx]++
			st.c.jot(obs.EvRetry, l.slot, l.id, idx, "attempt %d (worker exit: %v)", st.attempts[idx], exitErr)
			if st.attempts[idx] > st.c.maxRetries() {
				st.failLocked(fmt.Errorf("shard: cell %d (%s) failed %d times (last worker error: %v)",
					idx, st.c.Plan.Cells[idx].Cell, st.attempts[idx], exitErr))
				return
			}
		}
		st.requeueLocked(unfinished)
		st.c.logf("lease %d on %s exited (%v) with %d cell(s) unfinished: re-queued",
			l.id, st.c.Transport.SlotName(l.slot), exitErr, len(unfinished))
		st.slotFailureLocked(l.slot, exitErr)
	} else if len(unfinished) == 0 && !l.stolen {
		// Every cell of the lease is durable: the slot did its job, even
		// if the worker's teardown was messy. Forgive its failure history.
		st.slotSuccessLocked(l.slot)
		if exitErr != nil && st.failure == nil && st.ctx.Err() == nil {
			st.c.logf("lease %d on %s: worker exited with %v after finishing its cells",
				l.id, st.c.Transport.SlotName(l.slot), exitErr)
		}
	}
	st.persistLocked()
	st.cond.Broadcast()
}

// finishDegraded runs after every slot goroutine has returned. If the run
// went degraded — cells remain but every slot is dead or quarantined — it
// finishes the remainder in-process through the Fallback sweep, or fails
// explicitly when no fallback is configured. Either way the run ends in a
// merge-ready directory or a non-nil error, never a hang: that is the
// chaos layer's core invariant.
func (st *stealRun) finishDegraded() {
	st.mu.Lock()
	run := st.degraded && st.failure == nil && st.ctx.Err() == nil && st.left > 0
	remaining := append([]int(nil), st.queue...)
	st.mu.Unlock()
	if !run {
		return
	}
	if st.c.Fallback == nil {
		st.fail(fmt.Errorf("shard: every slot is dead or quarantined with %d cell(s) unfinished and no in-process fallback configured — aborting (cells %v)",
			len(remaining), remaining))
		return
	}
	st.c.logf("degraded mode: finishing %d cell(s) in-process %v", len(remaining), remaining)
	st.c.jot(obs.EvDegraded, -1, -1, -1, "finishing %d cell(s) in-process %v", len(remaining), remaining)
	sw := *st.c.Fallback
	sw.Workers = st.c.Workers
	_, err := Run(st.ctx, st.c.Dir, st.c.Plan, &sw, RunOptions{
		Cells:   remaining,
		Journal: st.c.Journal,
		OnCell: func(idx int) {
			st.mu.Lock()
			if !st.done[idx] {
				st.stats.DegradedCells++
				st.m.degraded.Inc()
				st.markDoneLocked(idx, nil, 0)
			}
			st.mu.Unlock()
		},
	})
	if err != nil {
		st.fail(fmt.Errorf("shard: degraded-mode completion failed: %w", err))
	}
}

// monitor expires leases whose heartbeat lapsed and refreshes the
// lease-state file.
func (st *stealRun) monitor() {
	interval := st.c.leaseTimeout() / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-st.ctx.Done():
			return
		case <-ticker.C:
			st.mu.Lock()
			now := st.c.clock()
			for _, l := range st.active {
				if l.worker == nil || l.stolen || now.Sub(l.last) <= st.c.leaseTimeout() {
					continue
				}
				if len(l.cells) == 0 {
					// Every cell of the lease is durable but the worker
					// wedged before exiting (SIGSTOP after its last
					// record, stuck teardown): nothing to steal, but the
					// slot must be reclaimed or it blocks in Wait forever.
					l.stolen = true
					st.c.logf("lease %d on %s: finished its cells but went silent for %s — reclaiming the worker",
						l.id, st.c.Transport.SlotName(l.slot), now.Sub(l.last).Round(time.Millisecond))
					st.c.jotMS(obs.EvHeartbeatLapse, l.slot, l.id, -1,
						float64(now.Sub(l.last).Milliseconds()), "finished its cells; reclaiming the worker")
					l.worker.Kill()
					continue
				}
				st.stealLocked(l, now.Sub(l.last))
			}
			st.checkDegradedLocked()
			st.persistLocked()
			// Wake slots waiting out a backoff or quarantine: expiry is
			// observed against the clock on this tick cadence.
			st.cond.Broadcast()
			st.mu.Unlock()
		}
	}
}

// stealLocked expires one lease: its remaining cells return to the queue
// for any slot to take, and the straggling worker is killed (SIGKILL
// reclaims even a SIGSTOPped process).
func (st *stealRun) stealLocked(l *lease, silence time.Duration) {
	stolen := sortedCells(l.cells)
	l.cells = make(map[int]bool)
	l.stolen = true
	st.stats.Steals++
	st.m.steals.Inc()
	st.requeueLocked(stolen)
	st.c.logf("lease %d on %s: no heartbeat for %s — stole %d cell(s) %v",
		l.id, st.c.Transport.SlotName(l.slot), silence.Round(time.Millisecond), len(stolen), stolen)
	st.c.jotMS(obs.EvHeartbeatLapse, l.slot, l.id, -1, float64(silence.Milliseconds()),
		"silent %s", silence.Round(time.Millisecond))
	st.c.jot(obs.EvSteal, l.slot, l.id, -1, "%d cell(s) re-queued %v", len(stolen), stolen)
	st.slotFailureLocked(l.slot, fmt.Errorf("no heartbeat for %s", silence.Round(time.Millisecond)))
	l.worker.Kill()
	st.cond.Broadcast()
}

// requeueLocked returns cells to the queue, keeping it ascending so lease
// contents stay reproducible given one scheduling history.
func (st *stealRun) requeueLocked(cells []int) {
	st.queue = append(st.queue, cells...)
	sort.Ints(st.queue)
}

func (st *stealRun) fail(err error) {
	st.mu.Lock()
	st.failLocked(err)
	st.mu.Unlock()
}

// failLocked records the first terminal error, kills outstanding workers,
// and wakes every slot so the run unwinds.
func (st *stealRun) failLocked(err error) {
	if st.failure == nil {
		st.failure = err
		st.killActiveLocked()
		st.cancel()
	}
	st.cond.Broadcast()
}

func (st *stealRun) killActiveLocked() {
	for _, l := range st.active {
		if l.worker != nil {
			l.worker.Kill()
		}
	}
}

func sortedCells(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for idx := range set {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// LeaseInfo is one active lease in a coordinator's state snapshot.
type LeaseInfo struct {
	// ID is the lease's grant sequence number.
	ID int `json:"id"`
	// Slot names the transport slot holding the lease (e.g. "local#0",
	// "ssh:host2").
	Slot string `json:"slot"`
	// Cells are the lease's remaining (not yet durable) cell indices.
	Cells []int `json:"cells"`
	// Done counts the lease's cells that already have durable records.
	Done int `json:"done"`
	// Granted and LastBeat bound the lease's lifetime: LastBeat older than
	// the coordinator's lease timeout means the lease is about to be
	// stolen — `shard status` shows such leases as STALE.
	Granted  time.Time `json:"granted"`
	LastBeat time.Time `json:"last_beat"`
}

// LeaseState is the coordinator's periodically persisted snapshot
// (dir/leases.json): what `shard status` shows about a live run. It is
// advisory observability only — correctness never depends on it, because
// completion is defined by the cell records alone.
type LeaseState struct {
	// Plan is the hash of the plan being executed.
	Plan string `json:"plan"`
	// Time is when the snapshot was written (a stale Time means the
	// coordinator is gone or wedged).
	Time time.Time `json:"time"`
	// Done and Total count the plan's durable and total cells as the
	// coordinator sees them.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Queued is the number of incomplete cells not currently leased.
	Queued int `json:"queued"`
	// Leases and Steals are lifetime counters for this coordinator run.
	Leases int `json:"leases"`
	Steals int `json:"steals"`
	// LeaseTimeoutMS is the coordinator's heartbeat-silence threshold in
	// milliseconds; `shard status` uses it to mark leases whose last beat
	// is older than this as STALE. Zero in snapshots from older binaries.
	LeaseTimeoutMS int64 `json:"lease_timeout_ms,omitempty"`
	// Pushed and RejectedFrames count record frames ingested over worker
	// streams and frames dropped at verification (push-sync runs only).
	Pushed         int `json:"pushed,omitempty"`
	RejectedFrames int `json:"rejected_frames,omitempty"`
	// SlotCosts maps slot names to their online mean per-cell wall-clock
	// cost in milliseconds, as reported by workers on cell heartbeats —
	// the estimate that seeds lease sizes.
	SlotCosts map[string]float64 `json:"slot_cost_ms,omitempty"`
	// Retries maps cell names to how many times a failing worker returned
	// them to the queue (steals excluded). Absent cells have zero retries.
	Retries map[string]int `json:"retries,omitempty"`
	// Health lists slots whose resilience state is not plain ok: in
	// backoff, quarantined (with a re-admission time), probing, or dead.
	Health []SlotHealthInfo `json:"health,omitempty"`
	// ChaosSeed labels the fault-injection schedule active for this run
	// (nbandit chaos); empty for normal runs.
	ChaosSeed string `json:"chaos_seed,omitempty"`
	// DegradedCells counts cells the coordinator finished in-process after
	// every slot died or was quarantined.
	DegradedCells int `json:"degraded_cells,omitempty"`
	// Active lists the outstanding leases.
	Active []LeaseInfo `json:"active,omitempty"`
}

// SlotHealthInfo is one slot's resilience state in a coordinator
// snapshot; only slots not in the ok state are listed.
type SlotHealthInfo struct {
	// Slot names the transport slot (e.g. "local#0", "ssh:host2").
	Slot string `json:"slot"`
	// State is the resilience state: "backoff", "quarantined", "probing",
	// or "dead".
	State string `json:"state"`
	// Failures is the slot's consecutive-failure count.
	Failures int `json:"failures,omitempty"`
	// Quarantines is how many quarantine cycles the slot has served since
	// its last success.
	Quarantines int `json:"quarantines,omitempty"`
	// ReadmitAt is when the current backoff or quarantine expires (the
	// re-admission ETA `shard status` shows); zero for probing/dead.
	ReadmitAt time.Time `json:"readmit_at"`
}

// LeaseStatePath returns the coordinator snapshot's location inside a
// shard directory.
func LeaseStatePath(dir string) string { return filepath.Join(dir, "leases.json") }

// persistLocked writes the lease-state snapshot atomically; failures are
// ignored (the snapshot is advisory, the records are the truth). The
// metrics gauges are refreshed here too, so the scrape view and the
// leases.json view move together.
func (st *stealRun) persistLocked() {
	st.mirrorLocked()
	ls := &LeaseState{
		Plan:           st.c.Plan.Hash,
		Time:           st.c.clock(),
		Done:           len(st.done),
		Total:          len(st.c.Plan.Cells),
		Queued:         len(st.queue),
		Leases:         st.stats.Leases,
		Steals:         st.stats.Steals,
		LeaseTimeoutMS: st.c.leaseTimeout().Milliseconds(),
		Pushed:         st.stats.Pushed,
		RejectedFrames: st.stats.RejectedFrames,
	}
	for slot, sc := range st.costs {
		if sc.meanMS <= 0 {
			continue
		}
		if ls.SlotCosts == nil {
			ls.SlotCosts = make(map[string]float64, len(st.costs))
		}
		ls.SlotCosts[st.c.Transport.SlotName(slot)] = sc.meanMS
	}
	ls.ChaosSeed = st.c.ChaosSeed
	ls.DegradedCells = st.stats.DegradedCells
	for idx, n := range st.attempts {
		if n <= 0 {
			continue
		}
		if ls.Retries == nil {
			ls.Retries = make(map[string]int)
		}
		ls.Retries[st.c.Plan.Cells[idx].Cell] = n
	}
	for slot := 0; slot < st.slots; slot++ {
		h := st.health[slot]
		if h == nil || (h.state == slotOK && h.consec == 0) {
			continue
		}
		ls.Health = append(ls.Health, SlotHealthInfo{
			Slot:        st.c.Transport.SlotName(slot),
			State:       h.state.String(),
			Failures:    h.consec,
			Quarantines: h.quarantines,
			ReadmitAt:   h.until,
		})
	}
	ids := make([]int, 0, len(st.active))
	for id := range st.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		l := st.active[id]
		// Done is computed against the global done set, not the lease's
		// remaining set: a stolen lease has its remaining cells cleared
		// without them being complete, and must not read as finished.
		leaseDone := 0
		for _, idx := range l.batch {
			if st.done[idx] {
				leaseDone++
			}
		}
		ls.Active = append(ls.Active, LeaseInfo{
			ID: l.id, Slot: st.c.Transport.SlotName(l.slot),
			Cells: sortedCells(l.cells), Done: leaseDone,
			Granted: l.granted, LastBeat: l.last,
		})
	}
	raw, err := json.MarshalIndent(ls, "", "  ")
	if err != nil {
		return
	}
	_ = atomicWrite(LeaseStatePath(st.c.Dir), append(raw, '\n'))
}

// ReadLeaseState loads dir/leases.json. A missing file returns
// fs.ErrNotExist: no coordinator has run here (or an old one predates
// lease snapshots).
func ReadLeaseState(dir string) (*LeaseState, error) {
	raw, err := os.ReadFile(LeaseStatePath(dir))
	if err != nil {
		return nil, err
	}
	var ls LeaseState
	if err := json.Unmarshal(raw, &ls); err != nil {
		return nil, fmt.Errorf("shard: parsing %s: %w", LeaseStatePath(dir), err)
	}
	return &ls, nil
}

package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"

	"netbandit/internal/bandit"
	"netbandit/internal/core"
	"netbandit/internal/policy"
	"netbandit/internal/rng"
	"netbandit/internal/sim"
)

// testSweep is the suite's grid: 3 G(n,p) densities × 2 policies = 6
// cells, small enough to run everywhere, large enough to shard 4 ways.
func testSweep() *sim.Sweep {
	return &sim.Sweep{
		Name: "shard-test",
		Envs: []sim.EnvSpec{
			sim.GnpBernoulliEnv("p=0.2", bandit.SSO, 8, 0, 0.2),
			sim.GnpBernoulliEnv("p=0.4", bandit.SSO, 8, 0, 0.4),
			sim.GnpBernoulliEnv("p=0.6", bandit.SSO, 8, 0, 0.6),
		},
		Policies: []sim.PolicySpec{
			{Name: "DFL-SSO", Single: func(*rng.RNG) bandit.SinglePolicy { return core.NewDFLSSO() }},
			{Name: "Thompson", Single: func(r *rng.RNG) bandit.SinglePolicy { return policy.NewThompson(r) }},
		},
		Config: sim.Config{Horizon: 120, AnnounceHorizon: true},
		Reps:   4,
		Seed:   77,
	}
}

// exportJSON renders a result through the canonical exporter — the
// bit-identity yardstick (it covers every cell's mean and stderr curves
// for all four metrics, plus names, seed, and reps).
func exportJSON(t *testing.T, res *sim.SweepResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sim.WriteSweepJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func singleProcessGolden(t *testing.T) []byte {
	t.Helper()
	res, err := testSweep().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return exportJSON(t, res)
}

func TestPlanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sw := testSweep()
	plan, err := NewPlan(sw, json.RawMessage(`{"note":"opaque"}`), 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shards() != 2 || len(plan.Cells) != 6 {
		t.Fatalf("plan = %d shards over %d cells", plan.Shards(), len(plan.Cells))
	}
	// Round-robin partition: shard 0 gets the even indices.
	if got := plan.Assign[0]; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("shard 0 cells = %v", got)
	}
	if plan.Cells[1].Cell != "p=0.2/Thompson" {
		t.Fatalf("cell 1 = %+v", plan.Cells[1])
	}
	if err := WritePlan(dir, plan); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPlan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Hash != plan.Hash || len(loaded.Cells) != len(plan.Cells) {
		t.Fatalf("round trip changed the plan: %+v", loaded)
	}
	if err := loaded.Validate(sw); err != nil {
		t.Fatalf("plan does not validate against its own sweep: %v", err)
	}

	// Tampering with the manifest must be detected by the content hash.
	raw, err := os.ReadFile(PlanPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(raw, []byte(`"seed": 77`), []byte(`"seed": 78`), 1)
	if bytes.Equal(raw, tampered) {
		t.Fatal("tamper target not found in plan.json")
	}
	if err := os.WriteFile(PlanPath(dir), tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPlan(dir); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("tampered plan accepted (err = %v)", err)
	}
}

func TestPlanValidateRejectsMismatchedSweep(t *testing.T) {
	plan, err := NewPlan(testSweep(), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	otherSeed := testSweep()
	otherSeed.Seed = 78
	if err := plan.Validate(otherSeed); err == nil {
		t.Fatal("plan accepted a sweep with a different seed")
	}
	otherGrid := testSweep()
	otherGrid.Policies = otherGrid.Policies[:1]
	if err := plan.Validate(otherGrid); err == nil {
		t.Fatal("plan accepted a sweep with a different grid")
	}
	renamed := testSweep()
	renamed.Envs[0].Name = "renamed"
	if err := plan.Validate(renamed); err == nil {
		t.Fatal("plan accepted a sweep whose cell names changed (binary drift)")
	}
	// CommonStreams changes every replication stream without changing the
	// cell enumeration — it must be part of the validated identity.
	crn := testSweep()
	crn.CommonStreams = true
	if err := plan.Validate(crn); err == nil {
		t.Fatal("plan accepted a sweep with a different CommonStreams mode")
	}
}

func TestPlanRejectsEmptyShards(t *testing.T) {
	if _, err := NewPlan(testSweep(), nil, 7); err == nil {
		t.Fatal("7 shards over 6 cells accepted")
	}
	if _, err := NewPlan(testSweep(), nil, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
}

// TestMergeBitIdenticalAcrossShardCounts is the acceptance criterion: the
// merged output equals a single-process Sweep.Run bit for bit, for 1, 2,
// and 4 shards, with the shards of the 2-way split run concurrently over
// the same directory (the multi-worker protocol, in-process).
func TestMergeBitIdenticalAcrossShardCounts(t *testing.T) {
	golden := singleProcessGolden(t)
	for _, shards := range []int{1, 2, 4} {
		dir := t.TempDir()
		plan, err := NewPlan(testSweep(), nil, shards)
		if err != nil {
			t.Fatal(err)
		}
		if err := WritePlan(dir, plan); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, shards)
		stats := make([]RunStats, shards)
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				stats[s], errs[s] = Run(context.Background(), dir, plan, testSweep(), RunOptions{Shard: s})
			}(s)
		}
		wg.Wait()
		for s, err := range errs {
			if err != nil {
				t.Fatalf("%d shards: shard %d: %v", shards, s, err)
			}
			if stats[s].Ran != stats[s].Assigned || stats[s].Resumed != 0 {
				t.Fatalf("%d shards: shard %d stats = %+v", shards, s, stats[s])
			}
		}
		merged, err := Merge(dir, plan)
		if err != nil {
			t.Fatalf("%d shards: merge: %v", shards, err)
		}
		if got := exportJSON(t, merged); !bytes.Equal(got, golden) {
			t.Fatalf("%d shards: merged output differs from single-process run", shards)
		}
	}
}

// countRecords counts valid spilled cells in dir.
func countRecords(t *testing.T, dir string, plan *Plan) int {
	t.Helper()
	all := make([]int, len(plan.Cells))
	for i := range all {
		all[i] = i
	}
	done, bad, err := scanCompleted(dir, plan, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) > 0 {
		t.Fatalf("unexpected invalid records: %v", bad)
	}
	return len(done)
}

// TestResumeAfterKill is the resume acceptance test: cancel a one-shard
// run after two cells have spilled, rerun, and require that the second
// invocation skips exactly the spilled cells, executes exactly the rest,
// and that the merged curves are bit-identical to an uninterrupted run.
func TestResumeAfterKill(t *testing.T) {
	golden := singleProcessGolden(t)
	dir := t.TempDir()
	plan, err := NewPlan(testSweep(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePlan(dir, plan); err != nil {
		t.Fatal(err)
	}

	// "Kill" the worker via context cancellation once 2 cells are done.
	// Sequential execution (Workers=1) makes the cut deterministic.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw := testSweep()
	sw.Workers = 1
	cellsDone := 0
	_, err = Run(ctx, dir, plan, sw, RunOptions{
		Shard: 0,
		Progress: func(p sim.Progress) {
			if p.CellDone == p.CellReps {
				cellsDone++
				if cellsDone == 2 {
					cancel()
				}
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}
	spilled := countRecords(t, dir, plan)
	if spilled < 2 || spilled >= len(plan.Cells) {
		t.Fatalf("first run spilled %d of %d cells, want a strict partial prefix of at least 2", spilled, len(plan.Cells))
	}

	// Rerun: exactly the remaining cells execute.
	stats, err := Run(context.Background(), dir, plan, testSweep(), RunOptions{Shard: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != spilled || stats.Ran != len(plan.Cells)-spilled {
		t.Fatalf("resume stats = %+v, want Resumed=%d Ran=%d", stats, spilled, len(plan.Cells)-spilled)
	}
	merged, err := Merge(dir, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := exportJSON(t, merged); !bytes.Equal(got, golden) {
		t.Fatal("interrupted+resumed merge differs from uninterrupted run")
	}

	// A third run has nothing left to do.
	stats, err = Run(context.Background(), dir, plan, testSweep(), RunOptions{Shard: 0})
	if err != nil || stats.Ran != 0 || stats.Resumed != len(plan.Cells) {
		t.Fatalf("idempotent rerun: stats = %+v, err = %v", stats, err)
	}
}

// TestRunnerMemoryBound asserts the O(1 cell) guarantee: with sequential
// execution the runner never holds more than one cell aggregate in
// memory, no matter how many cells the shard has — aggregates stream to
// disk as cells finish (the shard analogue of PR 1's reorder-window
// bound).
func TestRunnerMemoryBound(t *testing.T) {
	dir := t.TempDir()
	plan, err := NewPlan(testSweep(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePlan(dir, plan); err != nil {
		t.Fatal(err)
	}
	sw := testSweep()
	sw.Workers = 1
	sw.Window = 1
	stats, err := Run(context.Background(), dir, plan, sw, RunOptions{Shard: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != len(plan.Cells) {
		t.Fatalf("ran %d cells, want %d", stats.Ran, len(plan.Cells))
	}
	if stats.MaxLiveAggs != 1 {
		t.Fatalf("held %d cell aggregates at peak, want 1 (aggregates must stream to disk)", stats.MaxLiveAggs)
	}
	if stats.MaxBuffered > 1 {
		t.Fatalf("reorder buffer held %d series, window is 1", stats.MaxBuffered)
	}
}

// TestCorruptRecordRerunAndMergeRejection: a torn or tampered record is
// treated as absent by the runner (the cell reruns and the record is
// replaced) and rejected by the merger.
func TestCorruptRecordRerunAndMergeRejection(t *testing.T) {
	dir := t.TempDir()
	plan, err := NewPlan(testSweep(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePlan(dir, plan); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), dir, plan, testSweep(), RunOptions{Shard: 0}); err != nil {
		t.Fatal(err)
	}
	// Tear cell 3's record in half, as an interrupted copy on a synced
	// filesystem would.
	path := recordPath(dir, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dir, plan); err == nil {
		t.Fatal("merge accepted a corrupt record")
	}
	st, err := Scan(dir, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Invalid) != 1 {
		t.Fatalf("status reports %d invalid records, want 1", len(st.Invalid))
	}
	stats, err := Run(context.Background(), dir, plan, testSweep(), RunOptions{Shard: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != 1 || stats.Resumed != len(plan.Cells)-1 {
		t.Fatalf("corrupt-record rerun stats = %+v", stats)
	}
	if _, err := Merge(dir, plan); err != nil {
		t.Fatalf("merge after repair: %v", err)
	}
}

// TestRecordsFromStalePlanRejected: records written under one plan must
// not merge under another (different seed → different hash).
func TestRecordsFromStalePlanRejected(t *testing.T) {
	dir := t.TempDir()
	plan, err := NewPlan(testSweep(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePlan(dir, plan); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), dir, plan, testSweep(), RunOptions{Shard: 0}); err != nil {
		t.Fatal(err)
	}
	other := testSweep()
	other.Seed = 78
	stale, err := NewPlan(other, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dir, stale); err == nil {
		t.Fatal("records from a different plan accepted at merge time")
	}
	// The runner likewise refuses to resume from them: every cell reruns.
	dir2 := t.TempDir()
	if err := WritePlan(dir2, stale); err != nil {
		t.Fatal(err)
	}
	stats, err := Run(context.Background(), dir2, stale, other, RunOptions{Shard: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 0 {
		t.Fatalf("runner resumed from another plan's records: %+v", stats)
	}
}

func TestStatusScan(t *testing.T) {
	dir := t.TempDir()
	plan, err := NewPlan(testSweep(), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePlan(dir, plan); err != nil {
		t.Fatal(err)
	}
	// Run only shard 1.
	if _, err := Run(context.Background(), dir, plan, testSweep(), RunOptions{Shard: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := Scan(dir, plan)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 3 || st.Total != 6 {
		t.Fatalf("status = %d/%d, want 3/6", st.Done, st.Total)
	}
	if st.Shards[0].Done != 0 || st.Shards[1].Done != 3 {
		t.Fatalf("per-shard status = %+v", st.Shards)
	}
	// Pending names carry grid axis values, not bare indices.
	if len(st.Shards[0].Pending) != 3 || st.Shards[0].Pending[0] != "p=0.2/DFL-SSO" {
		t.Fatalf("pending cells = %v", st.Shards[0].Pending)
	}
}

func TestAggregateStateRoundTripThroughJSON(t *testing.T) {
	res, err := testSweep().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Cells[0].Agg
	raw, err := json.Marshal(agg.State())
	if err != nil {
		t.Fatal(err)
	}
	var st sim.AggregateState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	back, err := sim.AggregateFromState(&st)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []sim.Metric{sim.CumPseudo, sim.CumRealized, sim.AvgPseudo, sim.AvgRealized} {
		am, bm := agg.Mean(m), back.Mean(m)
		ae, be := agg.StdErr(m), back.StdErr(m)
		for i := range am {
			if am[i] != bm[i] || ae[i] != be[i] {
				t.Fatalf("metric %v point %d: %v±%v became %v±%v", m, i, am[i], ae[i], bm[i], be[i])
			}
		}
	}
}

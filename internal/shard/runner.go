package shard

import (
	"context"
	"fmt"
	"os"

	"netbandit/internal/obs"
	"netbandit/internal/sim"
)

// RunOptions configures one shard-runner invocation.
type RunOptions struct {
	// Shard selects which partition of the plan to execute. Ignored when
	// Cells is non-nil.
	Shard int
	// Cells, when non-nil, names the exact global cell indices to execute
	// instead of a plan partition — the work-stealing coordinator leases
	// arbitrary batches this way (`shard run -cells ...`). Indices must be
	// in range and free of duplicates.
	Cells []int
	// Progress, when non-nil, receives the sweep engine's per-replication
	// events for this invocation's cells (Done/Total count this
	// invocation's work).
	Progress sim.ProgressFunc
	// OnCell, when non-nil, is called with each cell index whose record is
	// durably on disk: once per resumed cell before any new cell runs, and
	// once per executed cell immediately after its record's atomic rename.
	// Heartbeat emission hangs off this hook — by the time it fires, a
	// coordinator may safely count the cell complete.
	OnCell func(index int)
	// Journal, when non-nil, receives one EvCellRun flight-recorder event
	// per cell this invocation executes (resumed cells are not re-logged):
	// the runner-side counterpart of the coordinator's EvCellDone. Nil
	// records nothing.
	Journal *obs.Recorder
}

// RunStats reports what one Run invocation did.
type RunStats struct {
	// Assigned is the number of cells this invocation was asked to run
	// (the shard's partition, or len(Cells)).
	Assigned int
	// Resumed is how many assigned cells already had a valid record on
	// disk and were skipped — the checkpoint/resume path.
	Resumed int
	// Ran is how many cells this invocation executed and spilled.
	Ran int
	// MaxLiveAggs is the peak number of cell aggregates held in memory at
	// once: aggregates stream to disk as cells finish, so this is O(1
	// cell), independent of the shard's size.
	MaxLiveAggs int
	// MaxBuffered is the executor's peak reorder-buffer occupancy.
	MaxBuffered int
}

// Run executes one batch of the plan's cells — a shard partition, or an
// explicit lease via RunOptions.Cells. It validates that sw is the sweep
// the plan was made from, scans dir/cells for already-completed records
// (resume), runs the remaining cells through the sweep engine, and spills
// each cell's aggregate to its own checksummed record the moment the cell
// finishes — peak aggregate memory is O(1 cell). A killed run leaves every
// finished cell's record behind; rerunning executes exactly the cells that
// are missing. Invalid records (torn copies, stale plans) are treated as
// absent and overwritten. Records are deterministic — any two workers
// produce byte-identical records for the same cell — so concurrent or
// repeated executions of the same cell (stolen leases, resumed stragglers)
// are harmless.
//
// Concurrency within the batch comes from sw.Workers; concurrency across
// batches comes from running one process per batch (the work-stealing
// StealCoordinator, or any scheduler that can launch `nbandit shard run`).
func Run(ctx context.Context, dir string, p *Plan, sw *sim.Sweep, opts RunOptions) (RunStats, error) {
	if err := p.check(); err != nil {
		return RunStats{}, err
	}
	if err := p.Validate(sw); err != nil {
		return RunStats{}, err
	}
	assigned := opts.Cells
	if assigned == nil {
		var err error
		assigned, err = p.ShardCells(opts.Shard)
		if err != nil {
			return RunStats{}, err
		}
	}
	if err := os.MkdirAll(cellsDir(dir), 0o755); err != nil {
		return RunStats{}, err
	}
	done, _, err := scanCompleted(dir, p, assigned)
	if err != nil {
		return RunStats{}, err
	}
	stats := RunStats{Assigned: len(assigned), Resumed: len(done)}
	var remaining []int
	for _, idx := range assigned {
		if done[idx] {
			if opts.OnCell != nil {
				opts.OnCell(idx)
			}
		} else {
			remaining = append(remaining, idx)
		}
	}
	if len(remaining) == 0 {
		return stats, nil
	}
	run := *sw
	run.Progress = opts.Progress
	cellStats, err := run.RunCells(ctx, remaining, func(c sim.CellResult) error {
		if err := writeCellRecord(dir, p, c); err != nil {
			return fmt.Errorf("spilling cell %d: %w", c.Index, err)
		}
		if opts.Journal.Enabled() {
			e := obs.Jot(obs.EvCellRun, "", -1, c.Index, "%s", p.Cells[c.Index].Cell)
			e.Plan = p.Hash
			opts.Journal.Emit(e)
		}
		if opts.OnCell != nil {
			opts.OnCell(c.Index)
		}
		return nil
	})
	stats.Ran = cellStats.Cells
	stats.MaxLiveAggs = cellStats.MaxLiveAggs
	stats.MaxBuffered = cellStats.MaxBuffered
	if err != nil {
		return stats, err
	}
	return stats, nil
}

package shard

import (
	"context"
	"os"
	"sync"
	"testing"
)

// The record-ingestion property the mountless coordinator rests on: a byte
// string either passes full verification against the plan — in which case
// persisting it yields a record that reads back and merges — or it is
// rejected and its cell re-queued. There is no third outcome where a
// damaged line lands on disk.

var fuzzFixture struct {
	once sync.Once
	plan *Plan
	raw  []byte // cell 0's genuine record line (no trailing newline)
	err  error
}

// recordFixture runs one real cell of the test sweep and returns its plan
// and record line, shared across fuzz executions.
func recordFixture() (*Plan, []byte, error) {
	f := &fuzzFixture
	f.once.Do(func() {
		dir, err := os.MkdirTemp("", "nbandit-fuzz-*")
		if err != nil {
			f.err = err
			return
		}
		defer os.RemoveAll(dir)
		sw := testSweep()
		if f.plan, f.err = NewPlan(sw, nil, 2); f.err != nil {
			return
		}
		if _, f.err = Run(context.Background(), dir, f.plan, sw, RunOptions{Cells: []int{0}}); f.err != nil {
			return
		}
		raw, err := os.ReadFile(RecordPath(dir, 0))
		if err != nil {
			f.err = err
			return
		}
		for len(raw) > 0 && raw[len(raw)-1] == '\n' {
			raw = raw[:len(raw)-1]
		}
		f.raw = raw
	})
	return f.plan, f.raw, f.err
}

// ingest mimics the coordinator's push path against a scratch dir: verify,
// persist only on success, and report whether anything landed.
func ingest(t *testing.T, dir string, p *Plan, index int, raw []byte) bool {
	t.Helper()
	if err := VerifyRecordLine(raw, p, index); err != nil {
		return false
	}
	if err := persistRecordLine(dir, index, raw); err != nil {
		t.Fatalf("persisting a verified line: %v", err)
	}
	return true
}

// FuzzRecordLineIngestion: arbitrary bytes through the coordinator's
// verify-then-persist gate. Anything that lands on disk must read back as
// a fully valid, mergeable record whose canonical content matches its own
// embedded checksum — i.e. the gate can waste a frame but cannot corrupt
// the job directory.
func FuzzRecordLineIngestion(f *testing.F) {
	plan, raw, err := recordFixture()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"plan":"not-this-plan","index":0}`))
	f.Add(append(append([]byte(nil), raw...), raw...)) // two records on one line
	f.Add(raw[:len(raw)/2])                            // torn mid-line
	f.Fuzz(func(t *testing.T, line []byte) {
		dir := t.TempDir()
		if !ingest(t, dir, plan, 0, line) {
			if _, err := os.Stat(RecordPath(dir, 0)); !os.IsNotExist(err) {
				t.Fatalf("rejected line still left a record on disk (stat err=%v)", err)
			}
			return
		}
		rec, err := readCellRecord(dir, plan, 0)
		if err != nil {
			t.Fatalf("persisted record does not read back: %v", err)
		}
		if _, err := rec.result(plan); err != nil {
			t.Fatalf("persisted record does not merge: %v", err)
		}
	})
}

// TestRecordLineSingleByteCorruption: every single-byte flip of a genuine
// record line is rejected, or — if the flip happens to leave the canonical
// content identical — accepted as the same record. A flip that changed the
// science cannot pass.
func TestRecordLineSingleByteCorruption(t *testing.T) {
	plan, raw, err := recordFixture()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRecordLine(raw, plan, 0); err != nil {
		t.Fatalf("the genuine line fails verification: %v", err)
	}
	if err := VerifyRecordLine(raw, plan, 1); err == nil {
		t.Fatal("cell 0's record verified as cell 1 (index misdirection accepted)")
	}
	accepted := 0
	for i := range raw {
		for _, flip := range []byte{0x01, 0x20, 0x80} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= flip
			if err := VerifyRecordLine(mut, plan, 0); err == nil {
				// Only acceptable if the mutation canonicalises back to the
				// very same record content (e.g. an equivalent JSON number
				// spelling) — its re-derived checksum must equal the
				// original's embedded one.
				rec, derr := decodeRecordLine(mut, plan, 0)
				if derr != nil {
					t.Fatalf("byte %d flip %x: verified but does not decode: %v", i, flip, derr)
				}
				orig, derr := decodeRecordLine(raw, plan, 0)
				if derr != nil {
					t.Fatal(derr)
				}
				if rec.Sum != orig.Sum {
					t.Fatalf("byte %d flip %x: a different record passed verification", i, flip)
				}
				accepted++
			}
		}
	}
	if accepted > 0 {
		t.Logf("%d content-preserving flips accepted (harmless)", accepted)
	}
}

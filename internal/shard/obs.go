package shard

import (
	"encoding/json"
	"fmt"
	"os"

	"netbandit/internal/obs"
)

// This file is the coordinator's observability seam: thin helpers that
// stamp run context (plan hash, chaos seed) onto journal events, the
// metric instruments the coordinator updates, and the retrying
// leases.json reader that `shard status` shares with the journal
// machinery. Everything here is advisory — a nil Journal and a nil
// Metrics registry cost one pointer check per site.

// jot appends one journal event with the run's plan hash and chaos seed
// attached. slot < 0 means the event concerns no particular slot.
func (c *StealCoordinator) jot(typ string, slot, lease, cell int, format string, args ...any) {
	if !c.Journal.Enabled() {
		return
	}
	name := ""
	if slot >= 0 {
		name = c.Transport.SlotName(slot)
	}
	e := obs.Jot(typ, name, lease, cell, format, args...)
	e.Plan = c.Plan.Hash
	e.Seed = c.ChaosSeed
	c.Journal.Emit(e)
}

// jotMS is jot with a milliseconds payload (cell cost, heartbeat
// silence).
func (c *StealCoordinator) jotMS(typ string, slot, lease, cell int, ms float64, format string, args ...any) {
	if !c.Journal.Enabled() {
		return
	}
	name := ""
	if slot >= 0 {
		name = c.Transport.SlotName(slot)
	}
	e := obs.Jot(typ, name, lease, cell, format, args...)
	e.Plan = c.Plan.Hash
	e.Seed = c.ChaosSeed
	e.MS = ms
	c.Journal.Emit(e)
}

// jotHealth records one slot resilience-state transition, skipping
// self-transitions so the journal shows state changes, not confirmations.
func (c *StealCoordinator) jotHealth(slot int, from, to slotState) {
	if from == to {
		return
	}
	c.jot(obs.EvHealth, slot, -1, -1, "%s->%s", from, to)
}

// coordMetrics bundles the instruments one coordinator run updates.
// Built against a nil registry the instruments still work (they are just
// never scraped), so call sites need no guards.
type coordMetrics struct {
	reg *obs.Registry

	cellsDone, cellsTotal, queued, activeLeases *obs.Gauge

	leases, steals, requeued, pushed, rejected,
	spawnFails, backoffs, quarantines, probes, degraded *obs.Counter

	cellSeconds *obs.Histogram
}

// newCoordMetrics registers the coordinator's series on reg (which may
// be nil).
func newCoordMetrics(reg *obs.Registry) *coordMetrics {
	return &coordMetrics{
		reg:          reg,
		cellsDone:    reg.Gauge("nbandit_cells_done", "Cells of the plan with durable records."),
		cellsTotal:   reg.Gauge("nbandit_cells_total", "Total cells in the plan."),
		queued:       reg.Gauge("nbandit_cells_queued", "Incomplete cells not currently leased."),
		activeLeases: reg.Gauge("nbandit_active_leases", "Leases currently outstanding."),
		leases:       reg.Counter("nbandit_leases_total", "Leases granted."),
		steals:       reg.Counter("nbandit_steals_total", "Leases expired for heartbeat silence and re-queued."),
		requeued:     reg.Counter("nbandit_retries_total", "Cells returned to the queue by failing workers (steals excluded)."),
		pushed:       reg.Counter("nbandit_records_pushed_total", "Record frames verified and persisted off worker streams."),
		rejected:     reg.Counter("nbandit_frames_rejected_total", "Pushed record frames dropped at verification."),
		spawnFails:   reg.Counter("nbandit_spawn_failures_total", "Transient worker-spawn failures."),
		backoffs:     reg.Counter("nbandit_slot_backoffs_total", "Timed waits imposed on failing slots."),
		quarantines:  reg.Counter("nbandit_slot_quarantines_total", "Slot quarantines after repeated failures."),
		probes:       reg.Counter("nbandit_slot_probes_total", "1-cell re-admission probes granted to quarantined slots."),
		degraded:     reg.Counter("nbandit_degraded_cells_total", "Cells finished in-process after every slot died or was quarantined."),
		cellSeconds: reg.Histogram("nbandit_cell_seconds",
			"Per-cell wall-clock cost as reported on worker heartbeats.", obs.DefaultLatencyBuckets),
	}
}

// mirrorLocked refreshes the gauge-shaped series from the run's state;
// called from persistLocked so the scrape cadence matches leases.json.
func (st *stealRun) mirrorLocked() {
	m := st.m
	if m.reg == nil {
		return
	}
	m.cellsDone.Set(float64(len(st.done)))
	m.cellsTotal.Set(float64(len(st.c.Plan.Cells)))
	m.queued.Set(float64(len(st.queue)))
	m.activeLeases.Set(float64(len(st.active)))
	for slot := 0; slot < st.slots; slot++ {
		name := st.c.Transport.SlotName(slot)
		state := slotOK
		if h := st.health[slot]; h != nil {
			state = h.state
		}
		m.reg.LabeledGauge("nbandit_slot_health",
			"Slot resilience state (0 ok, 1 backoff, 2 quarantined, 3 probing, 4 dead).",
			"slot", name).Set(float64(state))
		if sc := st.costs[slot]; sc != nil && sc.meanMS > 0 {
			m.reg.LabeledGauge("nbandit_slot_cost_ms",
				"Online mean per-cell wall-clock cost per slot, milliseconds.",
				"slot", name).Set(sc.meanMS)
		}
	}
}

// ReadLeaseStateRetry loads dir/leases.json through the shared
// read-verify gate (obs.ReadVerified): the coordinator replaces the file
// atomically, but a reader that opens it between the writer's rename and
// a slow filesystem's view settling can still see a torn or half-synced
// snapshot — so a parse failure is retried briefly instead of surfaced.
// It returns the state, how many read attempts were needed (attempts > 1
// means a torn snapshot was observed and re-read), and the final error
// if every attempt failed. A missing file returns fs.ErrNotExist.
func ReadLeaseStateRetry(dir string) (*LeaseState, int, error) {
	var ls LeaseState
	_, attempts, err := obs.ReadVerified(LeaseStatePath(dir), func(b []byte) error {
		ls = LeaseState{}
		return json.Unmarshal(b, &ls)
	})
	if err != nil {
		if os.IsNotExist(err) {
			return nil, attempts, err
		}
		return nil, attempts, fmt.Errorf("shard: parsing %s: %w", LeaseStatePath(dir), err)
	}
	return &ls, attempts, nil
}

package shard

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func coordinatorPlan(t *testing.T, shards int) *Plan {
	t.Helper()
	plan, err := NewPlan(testSweep(), nil, shards)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestCoordinatorRunsEveryShard drives the coordinator with stub worker
// processes (the real `nbandit shard run` workers are exercised by the
// cmd/nbandit tests and the CI e2e job) and checks one process per shard
// runs to completion under the concurrency cap.
func TestCoordinatorRunsEveryShard(t *testing.T) {
	dir := t.TempDir()
	c := &Coordinator{
		Plan:  coordinatorPlan(t, 3),
		Procs: 2,
		Command: func(ctx context.Context, shard int) *exec.Cmd {
			// The trailing \r-only chunk mimics a -progress stream: it must
			// reach the log without waiting for a newline.
			return exec.CommandContext(ctx, "sh", "-c",
				fmt.Sprintf("echo started >&2; printf 'animated\\rframe' >&2; touch %s",
					filepath.Join(dir, fmt.Sprintf("worker-%d", shard))))
		},
	}
	var log bytes.Buffer
	c.Log = &log
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("worker-%d", s))); err != nil {
			t.Fatalf("worker %d did not run: %v", s, err)
		}
	}
	if !strings.Contains(log.String(), "[shard 0] started") {
		t.Fatalf("log not prefixed by shard: %q", log.String())
	}
	// Carriage-return-terminated progress frames flush without a newline.
	if !strings.Contains(log.String(), "animated\r") {
		t.Fatalf("\\r-terminated frame was buffered instead of flushed: %q", log.String())
	}
}

// TestCoordinatorFailFast: one failing worker cancels the rest and its
// stderr reaches the joined error.
func TestCoordinatorFailFast(t *testing.T) {
	c := &Coordinator{
		Plan:  coordinatorPlan(t, 2),
		Procs: 1, // serialize: shard 0 fails before shard 1 starts
		Command: func(ctx context.Context, shard int) *exec.Cmd {
			if shard == 0 {
				return exec.CommandContext(ctx, "sh", "-c", "echo boom >&2; exit 3")
			}
			return exec.CommandContext(ctx, "sh", "-c", "exit 0")
		},
	}
	err := c.Run(context.Background())
	if err == nil {
		t.Fatal("failing worker reported no error")
	}
	if !strings.Contains(err.Error(), "shard 0") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error lacks shard attribution or stderr: %v", err)
	}
}

func TestCoordinatorValidates(t *testing.T) {
	if err := (&Coordinator{}).Run(context.Background()); err == nil {
		t.Fatal("coordinator without plan/command accepted")
	}
}

package shard

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"netbandit/internal/sim"
)

// Merge folds every cell record in dir back into a sim.SweepResult. Every
// cell of the plan must have a valid record (checksum, plan hash, and
// coordinates all verified); because each cell's aggregate was produced by
// the same engine, from streams keyed on the same global cell index, and
// round-tripped through its exact Welford moments, the result is
// bit-identical to what a single-process sim.Sweep.Run of the same sweep
// returns — whichever shards, machines, or interruptions produced the
// records.
func Merge(dir string, p *Plan) (*sim.SweepResult, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	cells := make([]sim.CellResult, len(p.Cells))
	var missing []string
	var bad []error
	for i := range p.Cells {
		rec, err := readCellRecord(dir, p, i)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				missing = append(missing, p.Cells[i].Cell)
				continue
			}
			bad = append(bad, err)
			continue
		}
		cells[i], err = rec.result(p)
		if err != nil {
			bad = append(bad, err)
		}
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("shard: %d invalid record(s): %w", len(bad), errors.Join(bad...))
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("shard: %d of %d cells incomplete: %s — run the remaining shards (shard status shows who owns them)",
			len(missing), len(p.Cells), strings.Join(missing, ", "))
	}
	return &sim.SweepResult{
		Name:  p.Name,
		Seed:  p.Seed,
		Reps:  p.Reps,
		Cells: cells,
	}, nil
}

// ShardStatus is one shard's completion state.
type ShardStatus struct {
	Shard int
	// Done and Total count the shard's completed and assigned cells.
	Done, Total int
	// Pending names the assigned cells (grid axis values, human-readable)
	// that have no valid record yet.
	Pending []string
}

// Status is a point-in-time scan of a shard directory.
type Status struct {
	Name        string
	Done, Total int
	Shards      []ShardStatus
	// Invalid lists records that exist but fail verification (torn copy,
	// stale plan): the owning runner will redo them, the merger rejects
	// them.
	Invalid []string
}

// Scan reports per-shard completion by scanning dir/cells against the
// plan. It never blocks on runners: records appear atomically.
func Scan(dir string, p *Plan) (*Status, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	st := &Status{Name: p.Name, Total: len(p.Cells)}
	for s := range p.Assign {
		assigned := p.Assign[s]
		done, bad, err := scanCompleted(dir, p, assigned)
		if err != nil {
			return nil, err
		}
		ss := ShardStatus{Shard: s, Total: len(assigned), Done: len(done)}
		for _, idx := range assigned {
			if !done[idx] {
				ss.Pending = append(ss.Pending, p.Cells[idx].Cell)
			}
		}
		for idx := range bad {
			st.Invalid = append(st.Invalid, p.Cells[idx].Cell)
		}
		st.Done += ss.Done
		st.Shards = append(st.Shards, ss)
	}
	sort.Strings(st.Invalid)
	return st, nil
}

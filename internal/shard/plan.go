package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"netbandit/internal/sim"
)

// PlanVersion is the manifest format version; readers reject anything
// else.
const PlanVersion = 1

// CellMeta identifies one grid cell in a plan: its global index and its
// grid axis values. It mirrors sim.CellResult minus the aggregate.
type CellMeta struct {
	Index    int    `json:"index"`
	Cell     string `json:"cell"`
	Env      string `json:"env,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Config   string `json:"config,omitempty"`
	Scenario string `json:"scenario"`
}

// Plan is the versioned shard manifest: the sweep's identity (name, seed,
// reps), an opaque grid description the planner round-trips so runners can
// rebuild the sweep, the enumerated cells, and a partition of their
// indices into shards. Hash is the SHA-256 of the canonical JSON encoding
// with Hash itself empty; every record written by a runner embeds it, so
// mismatched plans, directories, or binaries are rejected at run and merge
// time instead of producing silently wrong grids.
type Plan struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	Seed    uint64 `json:"seed"`
	Reps    int    `json:"reps"`
	// CommonStreams records the sweep's replication-stream mode (common
	// random numbers reuse one stream family across cells). It changes
	// every replication's randomness without changing the cell
	// enumeration, so it is part of the validated identity.
	CommonStreams bool `json:"common_streams,omitempty"`
	// Grid is an opaque, caller-defined description of the sweep (the
	// nbandit CLI stores its grid flags here) used to rebuild the
	// sim.Sweep on the worker side. The shard package never interprets it.
	Grid json.RawMessage `json:"grid,omitempty"`
	// Cells enumerates the grid in deterministic order; Cells[i].Index == i.
	Cells []CellMeta `json:"cells"`
	// Assign partitions the cell indices into len(Assign) shards
	// (round-robin by default, editable by hand for rebalancing).
	Assign [][]int `json:"assign"`
	Hash   string  `json:"hash,omitempty"`
}

// NewPlan enumerates sw's cells and partitions them round-robin into the
// given number of shards. grid is stored opaquely for runners to rebuild
// the sweep; it may be nil when plan and runner share a process.
func NewPlan(sw *sim.Sweep, grid json.RawMessage, shards int) (*Plan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", shards)
	}
	metas, err := sw.CellMetas()
	if err != nil {
		return nil, err
	}
	if shards > len(metas) {
		return nil, fmt.Errorf("shard: %d shards for %d cells — shards would be empty", shards, len(metas))
	}
	p := &Plan{
		Version:       PlanVersion,
		Name:          sw.Name,
		Seed:          sw.Seed,
		Reps:          sw.Reps,
		CommonStreams: sw.CommonStreams,
		Grid:          grid,
		Cells:         cellMetas(metas),
		Assign:        make([][]int, shards),
	}
	for i := range metas {
		s := i % shards
		p.Assign[s] = append(p.Assign[s], i)
	}
	if p.Hash, err = p.computeHash(); err != nil {
		return nil, err
	}
	return p, nil
}

func cellMetas(metas []sim.CellResult) []CellMeta {
	out := make([]CellMeta, len(metas))
	for i, m := range metas {
		out[i] = CellMeta{
			Index: m.Index, Cell: m.Cell,
			Env: m.Env, Policy: m.Policy, Config: m.Config,
			Scenario: m.Scenario.String(),
		}
	}
	return out
}

// Shards returns the number of shards in the partition.
func (p *Plan) Shards() int { return len(p.Assign) }

// ShardCells returns the cell indices assigned to one shard.
func (p *Plan) ShardCells(shard int) ([]int, error) {
	if shard < 0 || shard >= len(p.Assign) {
		return nil, fmt.Errorf("shard: shard %d out of range [0,%d)", shard, len(p.Assign))
	}
	return p.Assign[shard], nil
}

// computeHash returns the SHA-256 hex digest of the plan's canonical JSON
// encoding with the Hash field empty.
func (p *Plan) computeHash() (string, error) {
	q := *p
	q.Hash = ""
	raw, err := json.Marshal(&q)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// check validates the plan's internal consistency: version, hash, cell
// indexing, and that Assign is a partition of the cell indices.
func (p *Plan) check() error {
	if p.Version != PlanVersion {
		return fmt.Errorf("shard: plan version %d, this binary speaks %d", p.Version, PlanVersion)
	}
	want, err := p.computeHash()
	if err != nil {
		return err
	}
	if p.Hash != want {
		return fmt.Errorf("shard: plan hash %.12s does not match content hash %.12s — plan edited without rehashing, or corrupted", p.Hash, want)
	}
	if p.Reps <= 0 {
		return fmt.Errorf("shard: plan has %d replications", p.Reps)
	}
	if len(p.Cells) == 0 {
		return fmt.Errorf("shard: plan has no cells")
	}
	for i, c := range p.Cells {
		if c.Index != i {
			return fmt.Errorf("shard: cell %d has index %d", i, c.Index)
		}
	}
	if len(p.Assign) == 0 {
		return fmt.Errorf("shard: plan has no shards")
	}
	seen := make([]bool, len(p.Cells))
	total := 0
	for s, cells := range p.Assign {
		for _, idx := range cells {
			if idx < 0 || idx >= len(p.Cells) {
				return fmt.Errorf("shard: shard %d assigns out-of-range cell %d", s, idx)
			}
			if seen[idx] {
				return fmt.Errorf("shard: cell %d assigned to more than one shard", idx)
			}
			seen[idx] = true
			total++
		}
	}
	if total != len(p.Cells) {
		return fmt.Errorf("shard: assignment covers %d of %d cells", total, len(p.Cells))
	}
	return nil
}

// Validate checks that sw is the sweep this plan was made from: same name,
// seed, replication count, and — decisively — the same cell enumeration.
// A binary whose grid expansion changed since the plan was written (axis
// order, cell naming, scenario wiring) fails here instead of producing
// records that merge into a silently different grid.
func (p *Plan) Validate(sw *sim.Sweep) error {
	if sw.Name != p.Name {
		return fmt.Errorf("shard: sweep name %q, plan was made for %q", sw.Name, p.Name)
	}
	if sw.Seed != p.Seed {
		return fmt.Errorf("shard: sweep seed %d, plan was made for %d", sw.Seed, p.Seed)
	}
	if sw.Reps != p.Reps {
		return fmt.Errorf("shard: sweep has %d reps, plan was made for %d", sw.Reps, p.Reps)
	}
	if sw.CommonStreams != p.CommonStreams {
		return fmt.Errorf("shard: sweep CommonStreams=%v, plan was made with %v — replication streams would differ", sw.CommonStreams, p.CommonStreams)
	}
	metas, err := sw.CellMetas()
	if err != nil {
		return err
	}
	if len(metas) != len(p.Cells) {
		return fmt.Errorf("shard: sweep enumerates %d cells, plan has %d — plan and binary disagree about the grid", len(metas), len(p.Cells))
	}
	for i, got := range cellMetas(metas) {
		if got != p.Cells[i] {
			return fmt.Errorf("shard: cell %d is %+v, plan says %+v — plan and binary disagree about the grid", i, got, p.Cells[i])
		}
	}
	return nil
}

// PlanPath returns the plan manifest's location inside a shard directory.
func PlanPath(dir string) string { return filepath.Join(dir, "plan.json") }

// cellsDir returns the directory cell records live in.
func cellsDir(dir string) string { return filepath.Join(dir, "cells") }

// WritePlan hashes the plan and writes dir/plan.json atomically
// (tmp+rename), creating dir and dir/cells.
func WritePlan(dir string, p *Plan) error {
	var err error
	if p.Hash, err = p.computeHash(); err != nil {
		return err
	}
	if err := p.check(); err != nil {
		return err
	}
	if err := os.MkdirAll(cellsDir(dir), 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(PlanPath(dir), append(raw, '\n'))
}

// ReadPlan loads and verifies dir/plan.json: format version, content hash,
// and partition consistency.
func ReadPlan(dir string) (*Plan, error) {
	raw, err := os.ReadFile(PlanPath(dir))
	if err != nil {
		return nil, fmt.Errorf("shard: reading plan: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("shard: parsing %s: %w", PlanPath(dir), err)
	}
	if err := p.check(); err != nil {
		return nil, fmt.Errorf("shard: %s: %w", PlanPath(dir), err)
	}
	return &p, nil
}

// atomicWrite writes data to path via a temp file in the same directory
// and an atomic rename, so concurrent readers never observe a partial
// file.
func atomicWrite(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

package shard

import (
	"time"
)

// This file is the coordinator's slot-resilience policy: what happens to
// a transport slot between "its worker failed" and "it gets another
// lease". The state machine per slot is
//
//	ok → backoff → … → quarantined → probing → ok        (recovery)
//	                         ↑           │
//	                         └───────────┘ (failed probe: longer quarantine)
//	                                     └→ dead          (probes keep failing)
//
// Each failure (spawn refused, worker exited with unfinished cells, lease
// stolen for silence) bumps a consecutive-failure counter and earns the
// slot an exponentially growing backoff with deterministic jitter before
// its next lease. QuarantineAfter consecutive failures put the slot in
// quarantine: no leases until QuarantinePeriod passes, then a single
// 1-cell probe lease decides between full re-admission and a doubled
// quarantine. deadAfterQuarantines failed probe cycles kill the slot for
// the rest of the run. Any fully successful lease resets the slot to ok.
//
// The policy is deliberately deterministic — the jitter is a pure
// function of (plan hash, slot, failure count) — so a chaos run's
// schedule replays exactly from its seed.

// slotState is one slot's position in the resilience state machine.
type slotState int

const (
	slotOK slotState = iota
	slotBackoff
	slotQuarantined
	slotProbing
	slotDead
)

// String names the state as persisted in leases.json and shown by
// `shard status`.
func (s slotState) String() string {
	switch s {
	case slotBackoff:
		return "backoff"
	case slotQuarantined:
		return "quarantined"
	case slotProbing:
		return "probing"
	case slotDead:
		return "dead"
	default:
		return "ok"
	}
}

// deadAfterQuarantines is how many quarantine cycles (each ended by a
// failed re-admission probe) a slot survives before it is declared dead.
const deadAfterQuarantines = 3

// slotHealth tracks one slot's standing with the coordinator.
type slotHealth struct {
	state       slotState
	consec      int       // consecutive failures since the last success
	quarantines int       // quarantine cycles since the last success
	until       time.Time // backoff/quarantine expiry
}

func (c *StealCoordinator) backoffBase() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return 250 * time.Millisecond
}

func (c *StealCoordinator) backoffMax() time.Duration {
	if c.BackoffMax > 0 {
		return c.BackoffMax
	}
	return 16 * c.backoffBase()
}

func (c *StealCoordinator) quarantineAfter() int {
	if c.QuarantineAfter > 0 {
		return c.QuarantineAfter
	}
	return 3
}

func (c *StealCoordinator) quarantinePeriod() time.Duration {
	if c.QuarantinePeriod > 0 {
		return c.QuarantinePeriod
	}
	return 2 * c.leaseTimeout()
}

// backoffDelay sizes the wait before a slot's next lease after its
// consec-th consecutive failure: exponential in the failure count, capped
// at backoffMax, plus jitter of up to half the base. The jitter is
// deterministic — a splitmix64 hash of (plan hash, slot, consec) — so two
// slots that fail in lockstep still desynchronise, but a replayed chaos
// run waits exactly as long as the original.
func (c *StealCoordinator) backoffDelay(slot, consec int) time.Duration {
	base, ceil := c.backoffBase(), c.backoffMax()
	shift := consec - 1
	if shift > 16 {
		shift = 16
	}
	d := base << uint(shift)
	if d <= 0 || d > ceil {
		d = ceil
	}
	s := uint64(0x243f6a8885a308d3)
	for i := 0; i < len(c.Plan.Hash); i++ {
		s = s*131 + uint64(c.Plan.Hash[i])
	}
	s ^= uint64(slot)<<40 ^ uint64(consec)
	s += 0x9e3779b97f4a7c15
	z := s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return d + time.Duration(z%uint64(base/2+1))
}

// healthLocked returns slot's health record, creating it at ok.
func (st *stealRun) healthLocked(slot int) *slotHealth {
	h := st.health[slot]
	if h == nil {
		h = &slotHealth{}
		st.health[slot] = h
	}
	return h
}

// slotFailureLocked records one failure against slot and advances the
// state machine: backoff while failures are few, quarantine once they
// reach QuarantineAfter, a longer quarantine when a re-admission probe
// fails, dead when probes have failed deadAfterQuarantines times.
func (st *stealRun) slotFailureLocked(slot int, cause error) {
	h := st.healthLocked(slot)
	h.consec++
	name := st.c.Transport.SlotName(slot)
	from := h.state
	switch {
	case h.state == slotDead:
		// Late failure from an already-written-off slot: nothing changes.
	case h.state == slotProbing:
		if h.quarantines >= deadAfterQuarantines {
			h.state = slotDead
			h.until = time.Time{}
			st.c.logf("%s: re-admission probe failed after %d quarantine cycle(s) (%v) — slot is dead for this run",
				name, h.quarantines, cause)
		} else {
			st.quarantineLocked(slot, h, cause)
		}
	case h.consec >= st.c.quarantineAfter():
		st.quarantineLocked(slot, h, cause)
	default:
		d := st.c.backoffDelay(slot, h.consec)
		h.state = slotBackoff
		h.until = st.c.clock().Add(d)
		st.stats.Backoffs++
		st.m.backoffs.Inc()
		st.c.logf("%s: failure %d (%v) — backing off %s before the next lease",
			name, h.consec, cause, d.Round(time.Millisecond))
	}
	st.c.jotHealth(slot, from, h.state)
	st.checkDegradedLocked()
}

// quarantineLocked benches a slot: no leases until the period (doubled
// per prior cycle, capped at 16×) expires, then a 1-cell probe decides.
func (st *stealRun) quarantineLocked(slot int, h *slotHealth, cause error) {
	h.quarantines++
	shift := h.quarantines - 1
	if shift > 4 {
		shift = 4
	}
	d := st.c.quarantinePeriod() << uint(shift)
	h.state = slotQuarantined
	h.until = st.c.clock().Add(d)
	st.stats.Quarantines++
	st.m.quarantines.Inc()
	st.c.logf("%s: quarantined after %d consecutive failure(s) (%v) — re-admission probe in %s",
		st.c.Transport.SlotName(slot), h.consec, cause, d.Round(time.Millisecond))
}

// slotSuccessLocked records a fully successful lease: the slot returns to
// ok and its failure history is forgiven.
func (st *stealRun) slotSuccessLocked(slot int) {
	h := st.health[slot]
	if h == nil || h.state == slotOK && h.consec == 0 {
		return
	}
	if h.state == slotProbing {
		st.c.logf("%s: re-admission probe succeeded — slot restored", st.c.Transport.SlotName(slot))
	}
	st.c.jotHealth(slot, h.state, slotOK)
	h.state = slotOK
	h.consec = 0
	h.quarantines = 0
	h.until = time.Time{}
}

// checkDegradedLocked flips the run into degraded mode when distributed
// progress has become impossible: cells remain, nothing is leased, and
// every slot is dead or quarantined. Run then finishes the remainder
// in-process (Fallback) or aborts explicitly — never hangs.
func (st *stealRun) checkDegradedLocked() {
	if st.degraded || st.failure != nil || st.ctx.Err() != nil || st.left == 0 || len(st.active) > 0 {
		return
	}
	for slot := 0; slot < st.slots; slot++ {
		h := st.health[slot]
		if h == nil || (h.state != slotDead && h.state != slotQuarantined) {
			return
		}
	}
	st.degraded = true
	st.c.logf("every slot is dead or quarantined with %d cell(s) left — leaving distributed mode", st.left)
	st.cond.Broadcast()
}

package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMOSSBound(t *testing.T) {
	want := 49 * math.Sqrt(10000*100)
	if got := MOSSBound(10000, 100); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MOSSBound = %v, want %v", got, want)
	}
}

func TestTheorem1Bound(t *testing.T) {
	// With zero cliques only the sqrt(nK) term remains.
	want := 15.94 * math.Sqrt(10000*100)
	if got := Theorem1Bound(10000, 100, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
	// Each clique adds 0.74 sqrt(n/K).
	delta := Theorem1Bound(10000, 100, 10) - Theorem1Bound(10000, 100, 0)
	want = 0.74 * 10 * math.Sqrt(10000.0/100)
	if math.Abs(delta-want) > 1e-9 {
		t.Fatalf("clique term = %v, want %v", delta, want)
	}
}

func TestTheorem1BelowMOSS(t *testing.T) {
	// For reasonable clique covers (C <= K), the paper's bound beats the
	// MOSS bound: 15.94 sqrt(nK) + 0.74 C sqrt(n/K) < 49 sqrt(nK).
	for _, k := range []int{10, 100, 1000} {
		n := 10000
		if Theorem1Bound(n, k, k) >= MOSSBound(n, k) {
			t.Fatalf("Theorem 1 with C=K should still beat MOSS at K=%d", k)
		}
	}
}

func TestTheorem2MatchesTheorem1Form(t *testing.T) {
	if Theorem2Bound(5000, 190, 12) != Theorem1Bound(5000, 190, 12) {
		t.Fatal("Theorem 2 must be Theorem 1 over com-arms")
	}
}

func TestTheorem3Bound(t *testing.T) {
	want := 49.0 * 100 * math.Sqrt(10000*100)
	if got := Theorem3Bound(10000, 100); math.Abs(got-want) > 1e-6 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
	// K times the MOSS bound, exactly.
	if got := Theorem3Bound(400, 7) / MOSSBound(400, 7); math.Abs(got-7) > 1e-9 {
		t.Fatalf("Theorem3/MOSS ratio = %v, want 7", got)
	}
}

func TestTheorem4BoundPositiveAndSublinear(t *testing.T) {
	b1 := Theorem4Bound(1000, 20, 8)
	b2 := Theorem4Bound(100000, 20, 8)
	if b1 <= 0 || b2 <= b1 {
		t.Fatalf("bound not positive/increasing: %v, %v", b1, b2)
	}
	// Sublinear: average bound must shrink as n grows by 100x (the n^{5/6}
	// term dominates, so bound/n ~ n^{-1/6}).
	if b2/100000 >= b1/1000 {
		t.Fatalf("bound not sublinear: %v/n vs %v/n", b2/100000, b1/1000)
	}
}

func TestUCBNBoundGapDivergesAsGapVanishes(t *testing.T) {
	finite := UCBNBoundGap(10000, 5, 0.5, 0.1)
	if math.IsInf(finite, 1) || finite <= 0 {
		t.Fatalf("finite-gap bound = %v", finite)
	}
	if !math.IsInf(UCBNBoundGap(10000, 5, 0.5, 0), 1) {
		t.Fatal("zero-gap bound must diverge")
	}
	// Smaller gap, bigger bound — the Δ-dependence the paper removes.
	if UCBNBoundGap(10000, 5, 0.5, 0.01) <= finite {
		t.Fatal("bound must increase as the gap shrinks")
	}
}

func TestZeroRegretHorizon(t *testing.T) {
	// For Theorem 1 at K=100, C=20: find when guaranteed avg regret < 0.5.
	bound := func(n int) float64 { return Theorem1Bound(n, 100, 20) }
	h := ZeroRegretHorizon(bound, 0.5, 1<<30)
	if h == 0 {
		t.Fatal("horizon not found")
	}
	if bound(h)/float64(h) > 0.5 {
		t.Fatalf("bound/n = %v at reported horizon", bound(h)/float64(h))
	}
	if h > 1 && bound(h-1)/float64(h-1) <= 0.5 {
		t.Fatal("reported horizon is not minimal")
	}
	// Unreachable eps within maxN.
	if got := ZeroRegretHorizon(bound, 1e-12, 1000); got != 0 {
		t.Fatalf("impossible horizon = %d, want 0", got)
	}
}

func TestPanicsOnInvalidInput(t *testing.T) {
	for name, f := range map[string]func(){
		"MOSS n=0":          func() { MOSSBound(0, 5) },
		"T1 k=0":            func() { Theorem1Bound(10, 0, 1) },
		"T1 negative cover": func() { Theorem1Bound(10, 5, -1) },
		"T3 n=0":            func() { Theorem3Bound(0, 5) },
		"T4 closure=0":      func() { Theorem4Bound(10, 5, 0) },
		"horizon eps=0":     func() { ZeroRegretHorizon(func(int) float64 { return 1 }, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: all bounds are monotonically non-decreasing in n.
func TestBoundsMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		n1, n2 := int(a)+1, int(b)+1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		return MOSSBound(n1, 50) <= MOSSBound(n2, 50) &&
			Theorem1Bound(n1, 50, 10) <= Theorem1Bound(n2, 50, 10) &&
			Theorem3Bound(n1, 50) <= Theorem3Bound(n2, 50) &&
			Theorem4Bound(n1, 20, 8) <= Theorem4Bound(n2, 20, 8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package theory evaluates the paper's regret upper bounds numerically —
// Theorems 1-4 of Tang & Zhou plus the classical MOSS bound they improve
// on — so experiments can overlay measured regret against its theoretical
// ceiling and tests can assert that no measured curve ever exceeds its
// bound.
package theory

import (
	"fmt"
	"math"
)

// MOSSBound is the distribution-free bound of plain MOSS over K arms,
// R_n <= 49 sqrt(nK) (Audibert & Bubeck 2009) — the comparator the paper
// cites for the no-side-bonus case.
func MOSSBound(n, k int) float64 {
	mustPositive(n, k)
	return 49 * math.Sqrt(float64(n)*float64(k))
}

// Theorem1Bound is the DFL-SSO bound: R_n <= 15.94 sqrt(nK) + 0.74 C
// sqrt(n/K), where C is the size of a clique cover of the subgraph H
// induced by the large-gap arms. The C-dependent term is what side
// observation buys: denser relation graphs have smaller covers.
func Theorem1Bound(n, k, cliqueCover int) float64 {
	mustPositive(n, k)
	if cliqueCover < 0 {
		panic("theory: negative clique cover")
	}
	nf, kf := float64(n), float64(k)
	return 15.94*math.Sqrt(nf*kf) + 0.74*float64(cliqueCover)*math.Sqrt(nf/kf)
}

// Theorem2Bound is the DFL-CSO bound, Theorem 1 applied to the com-arm
// conversion: R_n <= 15.94 sqrt(n|F|) + 0.74 C sqrt(n/|F|), with C a
// clique cover of the strategy relation graph's large-gap subgraph.
func Theorem2Bound(n, f, cliqueCover int) float64 {
	return Theorem1Bound(n, f, cliqueCover)
}

// Theorem3Bound is the DFL-SSR bound: R_n <= 49 K sqrt(nK) — the MOSS
// bound scaled by K because side rewards live on [0, K] rather than [0, 1].
func Theorem3Bound(n, k int) float64 {
	mustPositive(n, k)
	return 49 * float64(k) * math.Sqrt(float64(n)*float64(k))
}

// Theorem4Bound is the DFL-CSR bound:
//
//	R(n) <= NK + (sqrt(eK) + 8(1+N)N^3) n^{2/3} + (1 + 4 sqrt(K) N^2 / e) N^2 K n^{5/6}
//
// where N = max_x |Y_x| is the largest strategy closure.
func Theorem4Bound(n, k, maxClosure int) float64 {
	mustPositive(n, k)
	if maxClosure <= 0 {
		panic("theory: non-positive max closure size")
	}
	nf, kf := float64(n), float64(k)
	nn := float64(maxClosure)
	n23 := math.Cbrt(nf * nf)    // n^{2/3}
	n56 := math.Pow(nf, 5.0/6.0) // n^{5/6}
	term1 := nn * kf             // NK
	term2 := (math.Sqrt(math.E*kf) + 8*(1+nn)*nn*nn*nn) * n23
	term3 := (1 + 4*math.Sqrt(kf)*nn*nn/math.E) * nn * nn * kf * n56
	return term1 + term2 + term3
}

// UCBNBoundGap is the leading term of the distribution-dependent UCB-N
// guarantee from prior work (Caron et al. 2012): sum over a clique cover
// of (8 max_i∈c Δ_i / Δ_min,c²) ln n + O(1). It is provided to exhibit the
// Δ dependence the paper's distribution-free bounds remove: as
// minGap → 0 this bound diverges while Theorem 1 stays finite.
func UCBNBoundGap(n, cliqueCover int, maxGap, minGap float64) float64 {
	mustPositive(n, 1)
	if cliqueCover < 0 || maxGap < 0 {
		panic("theory: invalid UCB-N bound parameters")
	}
	if minGap <= 0 {
		return math.Inf(1)
	}
	return float64(cliqueCover) * 8 * maxGap / (minGap * minGap) * math.Log(float64(n))
}

// ZeroRegretHorizon returns the smallest horizon n at which the given
// bound divided by n falls below eps — i.e. when the policy's guaranteed
// average regret enters the eps-optimal regime. It returns 0 when no such
// horizon exists below maxN.
func ZeroRegretHorizon(bound func(n int) float64, eps float64, maxN int) int {
	if eps <= 0 {
		panic("theory: eps must be positive")
	}
	// The bounds here are all o(n) and monotone in n/n, so binary search
	// on the predicate bound(n)/n <= eps is valid.
	lo, hi := 1, maxN
	if bound(hi)/float64(hi) > eps {
		return 0
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if bound(mid)/float64(mid) <= eps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func mustPositive(n, k int) {
	if n <= 0 || k <= 0 {
		panic(fmt.Sprintf("theory: n=%d and k=%d must be positive", n, k))
	}
}

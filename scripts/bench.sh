#!/usr/bin/env bash
# Regenerate the performance trajectory: run the hot-path micro-benchmarks
# and quick figure reproductions, merging the numbers into BENCH_PR2.json
# under the "after" label (the recorded pre-optimisation "baseline" block
# is preserved). Usage:
#
#   scripts/bench.sh                 # update BENCH_PR2.json's "after"
#   scripts/bench.sh -label mylabel  # record under a different label
set -euo pipefail
cd "$(dirname "$0")/.."
go run ./cmd/nbandit bench -json BENCH_PR2.json "$@"

#!/usr/bin/env bash
# Regenerate the performance trajectory: run the hot-path micro-benchmarks
# and quick figure reproductions, merging the numbers into a trajectory
# file under the "after" label (existing labels, e.g. a recorded baseline,
# are preserved). The output path is $1 so each PR appends to its own
# trajectory without editing code. Usage:
#
#   scripts/bench.sh                          # update BENCH_PR3.json's "after"
#   scripts/bench.sh BENCH_PR4.json           # record into another trajectory
#   scripts/bench.sh BENCH_PR3.json -label b  # record under a different label
#   scripts/bench.sh -label baseline          # flags only: default output
set -euo pipefail
cd "$(dirname "$0")/.."
out="BENCH_PR3.json"
# $1 is the output path only when it is not a flag, so flag-first
# invocations keep working against the default trajectory.
if [ "$#" -gt 0 ] && [ "${1#-}" = "$1" ]; then
  out="$1"
  shift
fi
go run ./cmd/nbandit bench -out "$out" "$@"

// Command benchcmp is the CI bench-gate comparator: it reads two bench
// trajectory files (the label→benchmark→metrics JSON written by `nbandit
// bench`), compares ns/op for an explicit list of tracked benchmarks, and
// exits non-zero if any of them regressed by more than the allowed
// percentage — or if a tracked benchmark is missing from the fresh file,
// which would otherwise let the gate rot silently. A tracked benchmark
// missing only from the baseline is reported as NEW and passes: that is
// the normal state of a PR that adds benchmarks and tracks them in the
// same change, before the baseline is next refreshed.
//
//	go run ./scripts/benchcmp -baseline BENCH_PR6.json -fresh BENCH_FRESH.json \
//	    -bench dflsso_replication_k100,dflsso_steady_state_round -max-regress 30
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// metrics is the per-benchmark slice of the trajectory schema benchcmp
// cares about.
type metrics struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// load reads one label's benchmark map out of a trajectory file.
func load(path, label string) (map[string]metrics, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	entry, ok := doc[label]
	if !ok {
		keys := make([]string, 0, len(doc))
		for k := range doc {
			keys = append(keys, k)
		}
		return nil, fmt.Errorf("%s: no label %q (have %s)", path, label, strings.Join(keys, ", "))
	}
	var out map[string]metrics
	if err := json.Unmarshal(entry, &out); err != nil {
		return nil, fmt.Errorf("%s[%s]: %w", path, label, err)
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR6.json", "committed baseline trajectory file")
	baselineLabel := flag.String("baseline-label", "after", "label to read from the baseline file")
	freshPath := flag.String("fresh", "BENCH_FRESH.json", "freshly measured trajectory file")
	freshLabel := flag.String("fresh-label", "after", "label to read from the fresh file")
	benches := flag.String("bench", "", "comma-separated tracked benchmark names (required)")
	maxRegress := flag.Float64("max-regress", 30, "maximum allowed ns/op regression, percent")
	flag.Parse()

	if *benches == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -bench is required (an empty gate guards nothing)")
		os.Exit(2)
	}
	base, err := load(*baselinePath, *baselineLabel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath, *freshLabel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	failed := false
	fmt.Printf("%-40s %14s %14s %9s\n", "benchmark", "baseline ns/op", "fresh ns/op", "delta")
	for _, name := range strings.Split(*benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, okB := base[name]
		f, okF := fresh[name]
		switch {
		case !okF || f.NsPerOp <= 0:
			fmt.Printf("%-40s MISSING from %s[%s]\n", name, *freshPath, *freshLabel)
			failed = true
		case !okB || b.NsPerOp <= 0:
			fmt.Printf("%-40s %14s %14.1f      NEW\n", name, "-", f.NsPerOp)
		default:
			delta := (f.NsPerOp/b.NsPerOp - 1) * 100
			verdict := ""
			if delta > *maxRegress {
				verdict = fmt.Sprintf("  REGRESSED (> %+.0f%%)", *maxRegress)
				failed = true
			}
			fmt.Printf("%-40s %14.1f %14.1f %+8.1f%%%s\n", name, b.NsPerOp, f.NsPerOp, delta, verdict)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: gate failed (threshold %+.0f%% vs %s[%s])\n",
			*maxRegress, *baselinePath, *baselineLabel)
		os.Exit(1)
	}
	fmt.Printf("benchcmp: all tracked benchmarks within %+.0f%% of %s[%s]\n",
		*maxRegress, *baselinePath, *baselineLabel)
}

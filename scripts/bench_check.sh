#!/usr/bin/env bash
# Benchmark regression gate: re-measure the repository's tracked hot paths
# with `nbandit bench` and fail if any of them regressed by more than
# BENCH_MAX_REGRESS percent (default 30) against the committed baseline
# trajectory. The fresh numbers land in BENCH_PR5.json (merged under the
# "after" label, preserving other labels), which CI uploads as an artifact
# so a failure always ships the evidence needed to diagnose — or, for a
# legitimate hardware shift, to re-baseline.
#
#   scripts/bench_check.sh                     # gate against BENCH_PR2.json
#   BENCH_TIME=2s scripts/bench_check.sh       # longer, steadier measurement
#   BENCH_MAX_REGRESS=50 scripts/bench_check.sh
#
# Tracked hot paths are the PR 2 kernel benchmarks (see BENCH_PR2.json and
# bench_test.go): replication round loop, steady-state round, strategy
# graph construction, closure sampling. Figure-reproduction benches are
# excluded — they measure science shape, not kernels, and their regret
# metrics are covered by golden tests instead.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-BENCH_PR5.json}"
baseline="${BENCH_BASELINE:-BENCH_PR2.json}"
threshold="${BENCH_MAX_REGRESS:-30}"
benchtime="${BENCH_TIME:-1s}"

tracked="dflsso_replication_k100,dflsso_steady_state_round,strategy_graph_construction_top2_k20,sample_observed_closure,dflcsr_replication_k20"

go run ./cmd/nbandit bench -out "$out" -label after -benchtime "$benchtime"
go run ./scripts/benchcmp \
  -baseline "$baseline" -baseline-label after \
  -fresh "$out" -fresh-label after \
  -bench "$tracked" -max-regress "$threshold"

#!/usr/bin/env bash
# Benchmark regression gate: re-measure the repository's tracked hot paths
# with `nbandit bench` and fail if any of them regressed by more than
# BENCH_MAX_REGRESS percent (default 30) against the committed baseline
# trajectory. The fresh numbers land in BENCH_FRESH.json (a separate file
# from the baseline, so the gate never compares the baseline to itself),
# which CI uploads as an artifact so a failure always ships the evidence
# needed to diagnose — or, for a legitimate hardware shift, to re-baseline.
#
#   scripts/bench_check.sh                     # gate against BENCH_PR6.json
#   BENCH_TIME=2s scripts/bench_check.sh       # longer, steadier measurement
#   BENCH_MAX_REGRESS=50 scripts/bench_check.sh
#
# Tracked hot paths are the kernel benchmarks (see BENCH_PR6.json and
# bench_test.go): replication round loop, steady-state round, strategy
# graph construction, closure sampling, and the large-K family at K = 10⁴
# (strategy-graph build, steady round, closure sampling on the sparse
# representation), plus the decision service's decide path with and
# without the HTTP layer (serve_decide_env_k16, serve_http_decide_env_k16)
# and the contextual round loop (comblinucb_steady_round,
# ctx_thompson_steady_round).
# Figure-reproduction benches are excluded — they measure science shape,
# not kernels, and their regret metrics are covered by golden tests
# instead. Benchmarks present in the fresh run but absent from the
# baseline report as NEW and pass, so tracking a new benchmark and
# refreshing the baseline can land in the same PR — the serve family is
# in that state against BENCH_PR6.json until the next re-baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-BENCH_FRESH.json}"
baseline="${BENCH_BASELINE:-BENCH_PR6.json}"
threshold="${BENCH_MAX_REGRESS:-30}"
benchtime="${BENCH_TIME:-1s}"

if [[ "$out" == "$baseline" ]]; then
  echo "bench_check: BENCH_OUT must differ from BENCH_BASELINE ($baseline)" >&2
  exit 2
fi

tracked="dflsso_replication_k100,dflsso_steady_state_round,strategy_graph_construction_top2_k20,sample_observed_closure,dflcsr_replication_k20,largek_sg_build_k10000,largek_steady_state_round_k10000,largek_closure_sample_k10000,serve_decide_env_k16,serve_http_decide_env_k16,comblinucb_steady_round,ctx_thompson_steady_round"

go run ./cmd/nbandit bench -out "$out" -label after -benchtime "$benchtime"
go run ./scripts/benchcmp \
  -baseline "$baseline" -baseline-label after \
  -fresh "$out" -fresh-label after \
  -bench "$tracked" -max-regress "$threshold"

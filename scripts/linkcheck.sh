#!/bin/sh
# linkcheck.sh FILE.md... — verify that every relative markdown link and
# relative image reference in the given files points at a path that exists
# (anchors are stripped; absolute http(s)/mailto links are skipped, CI
# must not depend on the network). Exits non-zero listing every dangling
# link.
set -eu

fail=0
for f in "$@"; do
    [ -f "$f" ] || { echo "linkcheck: no such file: $f" >&2; fail=1; continue; }
    dir=$(dirname "$f")
    # Pull out every ](target) markdown link target.
    grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//' | while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "linkcheck: $f: dangling link: $target" >&2
            # Mark failure through a file: the while runs in a subshell.
            touch "${TMPDIR:-/tmp}/linkcheck.failed.$$"
        fi
    done
done
if [ -e "${TMPDIR:-/tmp}/linkcheck.failed.$$" ]; then
    rm -f "${TMPDIR:-/tmp}/linkcheck.failed.$$"
    exit 1
fi
exit "$fail"

package netbandit_test

import (
	"math"
	"strings"
	"testing"

	"netbandit"
)

func TestFacadeEnvironmentConstruction(t *testing.T) {
	r := netbandit.NewRNG(1)
	g := netbandit.GnpGraph(10, 0.3, r)
	env, err := netbandit.NewBernoulliEnv(g, []float64{
		0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	if env.K() != 10 {
		t.Fatalf("K = %d", env.K())
	}
	if arm, mean := env.BestArm(); arm != 9 || mean != 0.95 {
		t.Fatalf("best arm = %d (%v)", arm, mean)
	}
	if _, err := netbandit.NewBernoulliEnv(g, []float64{1.5}); err == nil {
		t.Fatal("invalid mean accepted")
	}
}

func TestFacadeDistributions(t *testing.T) {
	if _, err := netbandit.Bernoulli(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := netbandit.Beta(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := netbandit.TruncGaussian(0.5, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := netbandit.Bernoulli(-1); err == nil {
		t.Fatal("invalid Bernoulli accepted")
	}
}

func TestFacadePolicyConstructors(t *testing.T) {
	r := netbandit.NewRNG(2)
	singles := []netbandit.SinglePolicy{
		netbandit.NewDFLSSO(),
		netbandit.NewDFLSSOGreedyHop(),
		netbandit.NewDFLSSR(),
		netbandit.NewDFLSSRStreaming(),
		netbandit.NewMOSS(),
		netbandit.NewUCB1(),
		netbandit.NewUCBN(),
		netbandit.NewUCBMaxN(),
		netbandit.NewThompson(r),
		netbandit.NewEpsilonGreedy(0.1, r),
		netbandit.NewEXP3(0.1, r),
		netbandit.NewRandomPolicy(r),
	}
	seen := map[string]bool{}
	for _, p := range singles {
		name := p.Name()
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate policy name %q", name)
		}
		seen[name] = true
	}
	combos := []netbandit.ComboPolicy{
		netbandit.NewDFLCSO(),
		netbandit.NewDFLCSR(),
		netbandit.NewDFLCSRWithOracle(netbandit.GreedyOracle(2)),
		netbandit.NewCUCBDirect(),
		netbandit.NewCUCBClosure(),
		netbandit.NewComboRandom(r),
	}
	for _, p := range combos {
		if p.Name() == "" {
			t.Fatal("empty combo policy name")
		}
	}
}

func TestFacadeEndToEndSSO(t *testing.T) {
	r := netbandit.NewRNG(3)
	g := netbandit.GnpGraph(20, 0.4, r)
	env, err := netbandit.NewRandomBernoulliEnv(g, 20, r)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := netbandit.ReplicateSingle(env, netbandit.SSO,
		func(*netbandit.RNG) netbandit.SinglePolicy { return netbandit.NewDFLSSO() },
		netbandit.Config{Horizon: 1500, AnnounceHorizon: true},
		netbandit.ReplicateOptions{Reps: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	final := agg.Final(netbandit.AvgPseudo)
	if math.IsNaN(final) || final < 0 || final > 0.5 {
		t.Fatalf("implausible final avg regret %v", final)
	}
}

func TestFacadeEndToEndCSR(t *testing.T) {
	r := netbandit.NewRNG(5)
	g := netbandit.GnpGraph(10, 0.3, r)
	env, err := netbandit.NewRandomBernoulliEnv(g, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	set, err := netbandit.TopM(10, 2, g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := netbandit.RunCombo(env, set, netbandit.CSR, netbandit.NewDFLCSR(),
		netbandit.Config{Horizon: 500}, netbandit.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.T) == 0 || s.Policy != "DFL-CSR" {
		t.Fatalf("bad series: %+v", s)
	}
}

func TestFacadeStrategyHelpers(t *testing.T) {
	g := netbandit.StarGraph(5)
	set, err := netbandit.UpToM(5, 2, g)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 15 { // C(5,1)+C(5,2)
		t.Fatalf("|F| = %d, want 15", set.Len())
	}
	explicit, err := netbandit.ExplicitStrategies(3, [][]int{{0}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Len() != 2 {
		t.Fatalf("|F| = %d", explicit.Len())
	}
	ind, err := netbandit.IndependentSets(netbandit.CompleteGraph(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ind.Len() != 3 { // only singletons in K3
		t.Fatalf("|F| = %d, want 3", ind.Len())
	}
	sg := netbandit.BuildStrategyGraph(ind)
	if sg.N() != 3 {
		t.Fatalf("SG size %d", sg.N())
	}
	if netbandit.ExactOracle().Name() != "exact" {
		t.Fatal("oracle name")
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	exps := netbandit.Experiments()
	if len(exps) < 11 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	e, ok := netbandit.FindExperiment("fig5")
	if !ok {
		t.Fatal("fig5 missing")
	}
	table, err := e.Run(netbandit.Params{Horizon: 300, Reps: 2, Seed: 7, Points: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out := netbandit.RenderASCII(table); !strings.Contains(out, "fig5") {
		t.Fatal("ASCII render missing id")
	}
	if out := netbandit.Summary(table); !strings.Contains(out, "final") {
		t.Fatal("summary malformed")
	}
	var sb strings.Builder
	if err := netbandit.WriteCSV(&sb, table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "DFL-SSR") {
		t.Fatal("CSV missing curve")
	}
}

module netbandit

go 1.21

// Opportunistic channel access: one of the paper's introductory
// motivations (cognitive radio). A secondary user probes one of K
// channels per slot; channels overlapping in frequency interfere, so
// sensing one also reveals the occupancy of its spectral neighbours — a
// geometric relation graph over the band. The twist: primary-user
// activity is piecewise-stationary (traffic shifts between day-like and
// night-like regimes), exercising the non-stationary extension.
//
// The example compares plain DFL-SSO against the sliding-window variant
// under a regime change, and prints the Theorem 1 bound alongside the
// measured regret for the stationary opening phase. A perhaps surprising
// outcome: on this *narrow-band* graph most channels stay lightly
// observed, so plain DFL-SSO's anytime index retains a live exploration
// bonus and re-discovers the new optimum on its own — the sliding window
// only pays its perpetual re-exploration tax. (On densely observed
// graphs, where every arm's bonus collapses, the window wins decisively;
// see the abl-nonstat experiment.)
package main

import (
	"fmt"
	"log"

	"netbandit"
)

func main() {
	const (
		channels = 40
		horizon  = 9000
		seed     = 13
		window   = 600
	)

	// Spectral adjacency: channels within a small frequency distance
	// interfere; a 1-D lattice captured by a path-like random geometric
	// structure. We use a banded graph: channel i talks to i±1, i±2.
	band := netbandit.NewGraph(channels)
	for i := 0; i < channels; i++ {
		for d := 1; d <= 2; d++ {
			if i+d < channels {
				band.MustAddEdge(i, i+d)
			}
		}
	}

	// Two regimes: daytime traffic frees the high channels, nighttime the
	// low ones. Availability = probability the channel is idle.
	day := make([]float64, channels)
	night := make([]float64, channels)
	for i := 0; i < channels; i++ {
		frac := float64(i) / float64(channels-1)
		day[i] = 0.15 + 0.7*frac
		night[i] = 0.85 - 0.7*frac
	}
	env, err := netbandit.NewPiecewiseEnv(band, []netbandit.Segment{
		{Start: 1, Means: day},
		{Start: horizon/2 + 1, Means: night},
	})
	if err != nil {
		log.Fatal(err)
	}

	checkpoints := []int{horizon / 2, horizon}
	plain, err := netbandit.RunPiecewise(env, netbandit.NewDFLSSO(), horizon, checkpoints, netbandit.NewRNG(seed+1))
	if err != nil {
		log.Fatal(err)
	}
	sw, err := netbandit.RunPiecewise(env, netbandit.NewSWDFLSSO(window), horizon, checkpoints, netbandit.NewRNG(seed+1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("opportunistic channel access: %d channels, banded interference graph,\n", channels)
	fmt.Printf("traffic regime flips at slot %d, n=%d\n\n", horizon/2, horizon)
	fmt.Printf("%-22s %18s %18s\n", "policy", "regret @ flip", "regret @ end")
	fmt.Printf("%-22s %18.1f %18.1f\n", plain.Policy, plain.CumDynamic[0], plain.CumDynamic[1])
	fmt.Printf("%-22s %18.1f %18.1f\n", sw.Policy, sw.CumDynamic[0], sw.CumDynamic[1])

	if plain.CumDynamic[1] < sw.CumDynamic[1] {
		fmt.Println("\nnarrow-band side observation keeps an exploration bonus alive, so")
		fmt.Println("plain DFL-SSO re-adapts by itself and the window's overhead loses here")
	}

	// Stationary-phase sanity: Theorem 1's ceiling for the opening phase.
	cover := channels / 3 // banded graph: triples {i, i+1, i+2} are cliques
	bound := netbandit.Theorem1RegretBound(horizon/2, channels, cover)
	fmt.Printf("\nTheorem 1 ceiling for the stationary first phase: %.0f\n", bound)
	fmt.Printf("measured first-phase regret (plain DFL-SSO):      %.1f\n", plain.CumDynamic[0])
}

// Largek: the K = 4096 scenario that the one-word kernels could not
// touch. Every arm set here spans 64 machine words, the relation graph
// is a skip-sampled sparse G(n, p) that never materialises its n×n bit
// matrix, and the strategy relation graph SG(F, L) over the |F| = K
// sliding-window family is built by the multi-word arm-probe kernel.
// The program prints construction statistics and then runs DFL-SSO
// long enough to show the steady-state round staying cheap at this
// scale.
package main

import (
	"fmt"
	"log"
	"time"

	"netbandit"
)

func main() {
	const (
		arms    = 4096
		avgDeg  = 8
		window  = 2
		horizon = 3 * arms // past the unseen queue, into steady state
		seed    = 4096
	)

	start := time.Now()
	env, err := netbandit.NewSparseBernoulliEnv(arms, avgDeg, seed)
	if err != nil {
		log.Fatal(err)
	}
	g := env.Graph()
	fmt.Printf("environment: K=%d Bernoulli arms, sparse G(n, p) with %d edges (mean degree %.1f), built in %v\n",
		arms, g.M(), 2*float64(g.M())/float64(arms), time.Since(start).Round(time.Millisecond))

	set, err := netbandit.WindowStrategies(arms, window, g)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	sg := netbandit.BuildStrategyGraph(set)
	fmt.Printf("strategy graph: |F|=%d window-%d strategies, SG(F, L) has %d edges, built in %v\n",
		set.Len(), window, sg.M(), time.Since(start).Round(time.Millisecond))

	cfg := netbandit.Config{Horizon: horizon, AnnounceHorizon: true}
	run, err := netbandit.NewSingleRun(env, netbandit.SSO, netbandit.NewDFLSSO(), cfg, netbandit.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	series, err := run.Run()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	last := len(series.T) - 1
	fmt.Printf("\nDFL-SSO over n=%d rounds: %v total, %v per round\n",
		horizon, elapsed.Round(time.Millisecond), (elapsed / horizon).Round(100*time.Nanosecond))
	fmt.Printf("final cumulative pseudo-regret: %.1f (%.4f per round)\n",
		series.CumPseudo[last], series.AvgPseudo[last])
	fmt.Println("\nchange `arms` to 100 or 10000 and rerun: the kernels pick the dense")
	fmt.Println("or sparse representation from the data shape, nothing else changes.")
}

// Budgeted ad placement: the combinatorial constraint need not be a fixed
// slot count — here each ad has a price and any affordable set of ads is
// feasible (the paper's model allows arbitrary constraints on F, including
// strategies of different sizes). The player collects the closure reward
// (CSR): impressions spill over to similar ads' audiences.
//
// DFL-CSR with the exact oracle runs over the budget-constrained family
// and the example reports the best affordable bundle it converges to,
// alongside the Theorem 4 ceiling for this instance.
package main

import (
	"fmt"
	"log"

	"netbandit"
)

func main() {
	const (
		ads     = 12
		budget  = 3.0
		horizon = 6000
		reps    = 6
		seed    = 17
	)

	r := netbandit.NewRNG(seed)
	graph := netbandit.GnpGraph(ads, 0.3, r)

	// Prices: expensive premium ads and cheap fillers.
	costs := make([]float64, ads)
	for i := range costs {
		costs[i] = 1 + float64(i%3) // 1, 2, or 3 units
	}
	set, err := netbandit.BudgetedStrategies(costs, budget, graph)
	if err != nil {
		log.Fatal(err)
	}

	env, err := netbandit.NewRandomBernoulliEnv(graph, ads, r)
	if err != nil {
		log.Fatal(err)
	}

	cfg := netbandit.Config{Horizon: horizon, AnnounceHorizon: true}
	opts := netbandit.ReplicateOptions{Reps: reps, Seed: seed}
	agg, err := netbandit.ReplicateCombo(env, set, netbandit.CSR,
		func(*netbandit.RNG) netbandit.ComboPolicy { return netbandit.NewDFLCSR() },
		cfg, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("budgeted ads: %d ads, budget %.0f, |F| = %d affordable bundles, n=%d\n\n",
		ads, budget, set.Len(), horizon)
	bestX, bestVal := set.BestClosure(env.Means())
	var spend float64
	for _, a := range set.Arms(bestX) {
		spend += costs[a]
	}
	fmt.Printf("optimal bundle: ads %v (spend %.0f/%.0f, closure value %.2f)\n",
		set.Arms(bestX), spend, budget, bestVal)
	fmt.Printf("DFL-CSR final cum. regret: %.1f (%.4f per round)\n",
		agg.Final(netbandit.CumPseudo), agg.Final(netbandit.AvgPseudo))
	fmt.Printf("Theorem 4 ceiling:         %.2e (N = %d)\n",
		netbandit.Theorem4RegretBound(horizon, ads, set.MaxClosureSize()),
		set.MaxClosureSize())
}

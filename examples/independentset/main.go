// Independent-set strategies: the paper's Fig. 2 worked example, scaled
// up. The feasible family is the set of independent sets of the relation
// graph (e.g. non-conflicting promotions that cannot run together), and
// the player collects side rewards from the whole closure — combinatorial
// play with side reward (CSR).
//
// The example prints the strategy relation graph statistics for the exact
// 4-arm paper instance, then runs DFL-CSR on a 14-arm instance and reports
// convergence to the optimal independent set.
package main

import (
	"fmt"
	"log"

	"netbandit"
)

func main() {
	paperInstance()
	scaledInstance()
}

// paperInstance reproduces Section IV's example exactly: path 1-2-3-4,
// seven feasible strategies.
func paperInstance() {
	g := netbandit.NewGraph(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	set, err := netbandit.IndependentSets(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	sg := netbandit.BuildStrategyGraph(set)
	fmt.Printf("paper Fig. 2 instance: |F| = %d strategies, SG has %d edges\n",
		set.Len(), sg.M())
	for x := 0; x < set.Len(); x++ {
		fmt.Printf("  s%d = %v  closure %v  SG-degree %d\n",
			x+1, set.Arms(x), set.Closure(x), sg.Degree(x))
	}
	fmt.Println()
}

// scaledInstance learns the best independent set of a 14-arm graph under
// side rewards.
func scaledInstance() {
	const (
		arms    = 14
		horizon = 6000
		reps    = 6
		seed    = 3
	)
	r := netbandit.NewRNG(seed)
	graph := netbandit.GnpGraph(arms, 0.25, r)
	env, err := netbandit.NewRandomBernoulliEnv(graph, arms, r)
	if err != nil {
		log.Fatal(err)
	}
	set, err := netbandit.IndependentSets(graph, 2)
	if err != nil {
		log.Fatal(err)
	}

	cfg := netbandit.Config{Horizon: horizon, AnnounceHorizon: true}
	opts := netbandit.ReplicateOptions{Reps: reps, Seed: seed}
	agg, err := netbandit.ReplicateCombo(env, set, netbandit.CSR,
		func(*netbandit.RNG) netbandit.ComboPolicy { return netbandit.NewDFLCSR() },
		cfg, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scaled instance: %d arms, |F| = %d independent sets, n=%d\n",
		arms, set.Len(), horizon)
	fmt.Printf("  DFL-CSR final cum. regret: %.1f (%.4f per round)\n",
		agg.Final(netbandit.CumPseudo), agg.Final(netbandit.AvgPseudo))
	fmt.Printf("  avg regret trajectory: ")
	avg := agg.Mean(netbandit.AvgPseudo)
	for i := 0; i < len(avg); i += len(avg) / 5 {
		fmt.Printf("%.3f ", avg[i])
	}
	fmt.Printf("-> %.3f\n", avg[len(avg)-1])
}

// Quickstart: the smallest end-to-end use of the public API — build a
// networked bandit environment, run DFL-SSO against MOSS for a few
// thousand rounds, and print the final regrets. This is the Fig. 3
// comparison in miniature.
package main

import (
	"fmt"
	"log"

	"netbandit"
)

func main() {
	const (
		arms    = 50
		edgeP   = 0.3
		horizon = 5000
		reps    = 10
		seed    = 1
	)

	r := netbandit.NewRNG(seed)
	graph := netbandit.GnpGraph(arms, edgeP, r)
	env, err := netbandit.NewRandomBernoulliEnv(graph, arms, r)
	if err != nil {
		log.Fatal(err)
	}

	cfg := netbandit.Config{Horizon: horizon, AnnounceHorizon: true}
	opts := netbandit.ReplicateOptions{Reps: reps, Seed: seed}

	dfl, err := netbandit.ReplicateSingle(env, netbandit.SSO,
		func(*netbandit.RNG) netbandit.SinglePolicy { return netbandit.NewDFLSSO() },
		cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	moss, err := netbandit.ReplicateSingle(env, netbandit.SSO,
		func(*netbandit.RNG) netbandit.SinglePolicy { return netbandit.NewMOSS() },
		cfg, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("networked bandit: %d Bernoulli arms, G(%d, %.1f) relation graph, n=%d, %d reps\n\n",
		arms, arms, edgeP, horizon, reps)
	fmt.Printf("%-10s %22s %22s\n", "policy", "final cum. regret", "final regret / round")
	fmt.Printf("%-10s %22.1f %22.4f\n", "MOSS", moss.Final(netbandit.CumPseudo), moss.Final(netbandit.AvgPseudo))
	fmt.Printf("%-10s %22.1f %22.4f\n", "DFL-SSO", dfl.Final(netbandit.CumPseudo), dfl.Final(netbandit.AvgPseudo))
	fmt.Printf("\nside observations cut regret by %.1fx\n",
		moss.Final(netbandit.CumPseudo)/dfl.Final(netbandit.CumPseudo))
}

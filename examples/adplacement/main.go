// Ad placement: the paper's introductory combinatorial motivation. An
// advertiser owns K candidate advertisements but can show only M per page
// view. Ads are linked in a relation graph when they target similar
// audiences: showing an ad also reveals (through panel feedback) how its
// similar ads would have performed — combinatorial play with side
// observation (CSO).
//
// The example runs DFL-CSO against the CUCB baseline and the uniform
// random placer, and prints which ad pair each policy converges to.
package main

import (
	"fmt"
	"log"

	"netbandit"
)

func main() {
	const (
		ads     = 16
		slots   = 2
		horizon = 8000
		reps    = 8
		seed    = 7
	)

	r := netbandit.NewRNG(seed)
	// Audience-similarity graph: geometric-style clusters come from a
	// moderately dense random graph at this scale.
	graph := netbandit.GnpGraph(ads, 0.35, r)

	// Click-through rates: two standout ads (3 and 11) plus background.
	ctr := make([]float64, ads)
	for i := range ctr {
		ctr[i] = 0.05 + 0.4*float64(i%5)/5
	}
	ctr[3], ctr[11] = 0.82, 0.78

	env, err := netbandit.NewBernoulliEnv(graph, ctr)
	if err != nil {
		log.Fatal(err)
	}
	set, err := netbandit.TopM(ads, slots, graph)
	if err != nil {
		log.Fatal(err)
	}

	cfg := netbandit.Config{Horizon: horizon, AnnounceHorizon: true}
	opts := netbandit.ReplicateOptions{Reps: reps, Seed: seed}

	contenders := []struct {
		name    string
		factory netbandit.ComboFactory
	}{
		{"DFL-CSO", func(*netbandit.RNG) netbandit.ComboPolicy { return netbandit.NewDFLCSO() }},
		{"CUCB", func(*netbandit.RNG) netbandit.ComboPolicy { return netbandit.NewCUCBDirect() }},
		{"random", func(rr *netbandit.RNG) netbandit.ComboPolicy { return netbandit.NewComboRandom(rr) }},
	}

	fmt.Printf("ad placement: %d ads, %d slots per page, |F| = %d placements, n=%d\n\n",
		ads, slots, set.Len(), horizon)
	fmt.Printf("%-10s %20s %20s\n", "policy", "final cum. regret", "avg regret / page")
	for _, c := range contenders {
		agg, err := netbandit.ReplicateCombo(env, set, netbandit.CSO, c.factory, cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %20.1f %20.4f\n", c.name,
			agg.Final(netbandit.CumPseudo), agg.Final(netbandit.AvgPseudo))
	}

	bestX, bestVal := set.BestDirect(ctr)
	fmt.Printf("\noptimal placement: ads %v (expected %.2f clicks/page)\n",
		set.Arms(bestX), bestVal)
}

// Feature-targeted ad placement: the contextual variant of the
// adplacement example. Each page view arrives with audience features —
// time of day, device, inferred interest mix — and every candidate ad's
// click-through rate this view is linear in those features: p_i(t) =
// θ·x_i(t). The advertiser still shows M of K audience-linked ads per
// view (combinatorial play with side observation), but the best
// placement now changes from view to view, so a fixed-mean learner can
// only chase the average.
//
// The example sweeps combinatorial LinUCB and contextual Thompson
// sampling — which read the features — against DFL-CSO and CUCB, which
// cannot, on one contextual grid cell. The contextual policies' regret
// flattens; the fixed-mean policies pay a linear price for ignoring the
// context.
package main

import (
	"context"
	"fmt"
	"log"

	"netbandit"
)

func main() {
	const (
		ads     = 16
		slots   = 2
		dim     = 4 // audience features per page view
		density = 0.35
		horizon = 6000
		reps    = 8
		seed    = 7
	)

	env := netbandit.ContextualGnpEnv(
		fmt.Sprintf("ctx-ads(K=%d,d=%d)", ads, dim),
		netbandit.CSO, ads, slots, dim, density)

	var policies []netbandit.PolicySpec
	for _, name := range []string{"linucb", "ctx-thompson", "dfl", "cucb"} {
		spec, err := netbandit.NewPolicySpec(name, netbandit.CSO)
		if err != nil {
			log.Fatal(err)
		}
		policies = append(policies, spec)
	}

	sweep := netbandit.Sweep{
		Name:     "feature-targeted ad placement",
		Envs:     []netbandit.EnvSpec{env},
		Policies: policies,
		Configs: []netbandit.ConfigSpec{{Config: netbandit.Config{
			Horizon: horizon, AnnounceHorizon: true,
		}}},
		Reps: reps,
		Seed: seed,
	}
	res, err := sweep.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("feature-targeted ads: %d ads, %d slots, d=%d features per view, n=%d, %d reps\n\n",
		ads, slots, dim, horizon, reps)
	fmt.Printf("%-14s %20s %20s\n", "policy", "final cum. regret", "avg regret / view")
	for _, c := range res.Cells {
		fmt.Printf("%-14s %20.1f %20.4f\n", c.Policy,
			c.Agg.Final(netbandit.CumPseudo), c.Agg.Final(netbandit.AvgPseudo))
	}
	fmt.Println("\nregret here is against the per-view optimum: the best placement")
	fmt.Println("for each context, not one fixed placement — only the contextual")
	fmt.Println("policies can keep up with it.")
}

// Social recommendation: the paper's side-reward motivation. Promoting a
// product to one user in a social network also influences that user's
// friends to buy — single-play with side reward (SSR). The best user to
// target is not the one most likely to buy, but the one whose closed
// friend-circle buys the most in total.
//
// The network is a Barabási–Albert preferential-attachment graph (hubs =
// influencers). The example shows that DFL-SSR finds an influencer whose
// neighbourhood value far exceeds the best individual buyer's, while a
// policy that maximises individual purchase probability (DFL-SSO run on
// the same feedback) leaves reward on the table.
package main

import (
	"fmt"
	"log"

	"netbandit"
)

func main() {
	const (
		users   = 60
		horizon = 8000
		reps    = 8
		seed    = 11
	)

	r := netbandit.NewRNG(seed)
	graph := buildSocialNetwork(users, r)

	// Purchase probabilities: uniform-ish, with a standout individual
	// buyer who is poorly connected.
	probs := make([]float64, users)
	for i := range probs {
		probs[i] = 0.1 + 0.5*r.Float64()
	}
	probs[users-1] = 0.95 // strong buyer, but a late (low-degree) joiner

	env, err := netbandit.NewBernoulliEnv(graph, probs)
	if err != nil {
		log.Fatal(err)
	}

	bestArm, bestMean := env.BestArm()
	bestInf, bestSide := env.BestSideArm()
	fmt.Printf("social network: %d users (Barabási–Albert), n=%d\n\n", users, horizon)
	fmt.Printf("best individual buyer:  user %2d (p=%.2f, circle value %.2f)\n",
		bestArm, bestMean, env.SideMean(bestArm))
	fmt.Printf("best influence target:  user %2d (circle of %d, total value %.2f)\n\n",
		bestInf, graph.Degree(bestInf)+1, bestSide)

	cfg := netbandit.Config{Horizon: horizon, AnnounceHorizon: true}
	opts := netbandit.ReplicateOptions{Reps: reps, Seed: seed}

	contenders := []struct {
		name    string
		factory netbandit.SingleFactory
	}{
		{"DFL-SSR (exact)", func(*netbandit.RNG) netbandit.SinglePolicy { return netbandit.NewDFLSSR() }},
		{"DFL-SSR (streaming)", func(*netbandit.RNG) netbandit.SinglePolicy { return netbandit.NewDFLSSRStreaming() }},
		{"DFL-SSO (wrong objective)", func(*netbandit.RNG) netbandit.SinglePolicy { return netbandit.NewDFLSSO() }},
	}
	fmt.Printf("%-28s %18s %18s\n", "policy", "final cum. regret", "avg regret/round")
	for _, c := range contenders {
		agg, err := netbandit.ReplicateSingle(env, netbandit.SSR, c.factory, cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %18.1f %18.4f\n", c.name,
			agg.Final(netbandit.CumPseudo), agg.Final(netbandit.AvgPseudo))
	}
	fmt.Println("\n(regret is against the best influence target; maximising individual")
	fmt.Println(" purchase probability is the wrong objective under side rewards)")
}

// buildSocialNetwork wires a preferential-attachment graph through the
// public Graph API.
func buildSocialNetwork(users int, r *netbandit.RNG) *netbandit.Graph {
	// The facade exposes Gnp/Star/Complete directly; for BA we build edges
	// by preferential attachment over the public AddEdge API.
	g := netbandit.NewGraph(users)
	const attach = 2
	repeated := make([]int, 0, 4*users)
	// Seed triangle.
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	repeated = append(repeated, 0, 1, 1, 2, 0, 2)
	for v := 3; v < users; v++ {
		targets := map[int]bool{}
		for len(targets) < attach {
			targets[repeated[r.Intn(len(repeated))]] = true
		}
		for u := range targets {
			g.MustAddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	return g
}
